"""Column data types for the in-memory columnar engine.

The engine supports three logical types — 64-bit integers, 64-bit floats,
and fixed-width unicode strings — which is the minimum needed to express the
index-selection, compression, and placement workloads the framework tunes.
Values are stored in numpy arrays; :func:`coerce_array` normalises arbitrary
Python sequences into the canonical dtype for a logical type.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Logical column type."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)


def numpy_dtype_for(data_type: DataType, values: np.ndarray | None = None) -> np.dtype:
    """Canonical numpy dtype for a logical type.

    Strings use a fixed-width unicode dtype wide enough for ``values`` (or a
    default width of 16 characters when no values are given), so memory
    accounting is exact and ``searchsorted`` works without object arrays.
    """
    if data_type is DataType.INT:
        return np.dtype(np.int64)
    if data_type is DataType.FLOAT:
        return np.dtype(np.float64)
    if values is not None and values.size:
        width = max(1, int(max(len(str(v)) for v in values.tolist())))
    else:
        width = 16
    return np.dtype(f"<U{width}")


def coerce_array(values: Sequence | np.ndarray, data_type: DataType) -> np.ndarray:
    """Convert ``values`` into the canonical numpy array for ``data_type``.

    Raises :class:`SchemaError` when values cannot be represented losslessly
    (e.g. floats passed to an INT column).
    """
    arr = np.asarray(values)
    if data_type is DataType.INT:
        if arr.dtype.kind == "f":
            if not np.all(arr == np.floor(arr)):
                raise SchemaError("non-integral values for INT column")
            return arr.astype(np.int64)
        if arr.dtype.kind in ("i", "u"):
            return arr.astype(np.int64)
        if arr.dtype.kind == "b":
            return arr.astype(np.int64)
        raise SchemaError(f"cannot coerce dtype {arr.dtype} to INT")
    if data_type is DataType.FLOAT:
        if arr.dtype.kind in ("f", "i", "u", "b"):
            return arr.astype(np.float64)
        raise SchemaError(f"cannot coerce dtype {arr.dtype} to FLOAT")
    # STRING
    if arr.dtype.kind in ("U", "S", "O", "i", "u", "f"):
        str_arr = arr.astype(str)
        return str_arr.astype(numpy_dtype_for(DataType.STRING, str_arr))
    raise SchemaError(f"cannot coerce dtype {arr.dtype} to STRING")


def value_matches_type(value: object, data_type: DataType) -> bool:
    """Whether a scalar predicate literal is compatible with ``data_type``."""
    if data_type is DataType.INT:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)
    if data_type is DataType.FLOAT:
        return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
            value, bool
        )
    return isinstance(value, str)
