"""Database knobs: named, typed, bounded configuration parameters.

Knobs are the continuous/stepped half of the configuration space the paper
describes ("the buffer pool size or the number of available threads are
typical examples for knobs"). Candidates for knob tuning are ranges with a
step (Section II-D.a), which :class:`Knob` captures directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KnobError
from repro.util.units import GIB, MIB


@dataclass(frozen=True)
class Knob:
    """Definition of one knob: an inclusive stepped numeric domain."""

    name: str
    lower: float
    upper: float
    step: float
    default: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise KnobError(f"knob {self.name!r}: lower > upper")
        if self.step <= 0:
            raise KnobError(f"knob {self.name!r}: step must be positive")
        if not self.is_valid(self.default):
            raise KnobError(f"knob {self.name!r}: default outside domain")

    def is_valid(self, value: float) -> bool:
        if value < self.lower or value > self.upper:
            return False
        steps = (value - self.lower) / self.step
        return abs(steps - round(steps)) < 1e-9

    def domain_values(self) -> list[float]:
        """All settable values, smallest first."""
        values = []
        v = self.lower
        while v <= self.upper + 1e-9:
            values.append(min(v, self.upper))
            v += self.step
        return values

    def clamp(self, value: float) -> float:
        """Nearest valid value to ``value``."""
        clamped = min(max(value, self.lower), self.upper)
        steps = round((clamped - self.lower) / self.step)
        return min(self.lower + steps * self.step, self.upper)


class KnobRegistry:
    """Holds knob definitions and their current values."""

    def __init__(self, knobs: list[Knob] | None = None) -> None:
        self._definitions: dict[str, Knob] = {}
        self._values: dict[str, float] = {}
        for knob in knobs or []:
            self.define(knob)

    def define(self, knob: Knob) -> None:
        if knob.name in self._definitions:
            raise KnobError(f"knob {knob.name!r} already defined")
        self._definitions[knob.name] = knob
        self._values[knob.name] = knob.default

    def definition(self, name: str) -> Knob:
        try:
            return self._definitions[name]
        except KeyError:
            raise KnobError(f"unknown knob {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._definitions)

    def get(self, name: str) -> float:
        self.definition(name)
        return self._values[name]

    def set(self, name: str, value: float) -> float:
        """Set a knob; returns the previous value."""
        knob = self.definition(name)
        if not knob.is_valid(value):
            raise KnobError(
                f"value {value} outside domain of knob {name!r} "
                f"[{knob.lower}, {knob.upper}] step {knob.step}"
            )
        previous = self._values[name]
        self._values[name] = float(value)
        return previous

    def snapshot(self) -> dict[str, float]:
        return dict(self._values)

    def restore(self, values: dict[str, float]) -> None:
        for name, value in values.items():
            self.set(name, value)


BUFFER_POOL_KNOB = "buffer_pool_bytes"
SCAN_THREADS_KNOB = "scan_threads"


def standard_knobs() -> list[Knob]:
    """The knob set every :class:`~repro.dbms.database.Database` starts with."""
    return [
        Knob(
            BUFFER_POOL_KNOB,
            lower=0.0,
            upper=4 * GIB,
            step=32 * MIB,
            default=256 * MIB,
            description=(
                "Bytes of DRAM reserved for caching chunks placed on slower "
                "tiers; 0 disables the buffer pool."
            ),
        ),
        Knob(
            SCAN_THREADS_KNOB,
            lower=1,
            upper=16,
            step=1,
            default=1,
            description="Worker threads available to a single table scan.",
        ),
    ]
