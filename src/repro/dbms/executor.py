"""Query execution with simulated timing.

The executor runs *compiled plans* against real chunk data (so results,
match counts, and selectivities are genuine): each query is first turned
into a :class:`~repro.plan.ir.PhysicalPlan` by the shared
:class:`~repro.plan.planner.QueryPlanner` — cached across repeated
queries — and the executor's job is purely to run each per-chunk step and
price the work via the :class:`~repro.dbms.hardware.HardwareProfile`:
encoding-weighted scan units, index probe units, tier multipliers
(resolved at bind time, softened by buffer pool hits), thread parallelism
from the ``scan_threads`` knob, and output materialisation.

The reported :class:`ExecutionReport` is the "observed runtime" that the
plan cache records and the adaptive cost models learn from.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.dbms.hardware import HardwareProfile

if TYPE_CHECKING:
    from repro.telemetry import Telemetry
from repro.dbms.kernel import run_plan
from repro.dbms.knobs import BUFFER_POOL_KNOB, SCAN_THREADS_KNOB, KnobRegistry
from repro.dbms.operators import (
    AggregateSpec,
    WorkSummary,
    compute_aggregate,
    execute_step,
)
from repro.dbms.table import Table
from repro.errors import ExecutionError
from repro.plan.binder import resolve_tier
from repro.plan.ir import PhysicalPlan
from repro.plan.planner import QueryPlanner
from repro.workload.query import Query


#: bound on the executor's per-(query, schema) validation memo
_VALIDATED_MEMO_CAPACITY = 8_192


class BufferPool:
    """An LRU cache of non-DRAM chunks, sized by the buffer-pool knob.

    A hit makes the chunk behave as if DRAM-resident for this access. The
    pool is the mechanism through which the buffer-pool knob interacts with
    the data-placement feature: a big pool hides bad placements, a small
    pool exposes them.
    """

    def __init__(self, capacity_bytes: float) -> None:
        self._capacity = float(capacity_bytes)
        self._entries: OrderedDict[tuple[str, int], int] = OrderedDict()
        self._used = 0

    @property
    def capacity_bytes(self) -> float:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def set_capacity(self, capacity_bytes: float) -> None:
        self._capacity = float(capacity_bytes)
        self._evict_to_fit()

    def _evict_to_fit(self) -> None:
        while self._used > self._capacity and self._entries:
            _key, size = self._entries.popitem(last=False)
            self._used -= size

    def access(self, key: tuple[str, int], size_bytes: int) -> bool:
        """Touch a chunk; returns True on hit. Misses admit the chunk."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if size_bytes <= self._capacity:
            self._entries[key] = size_bytes
            self._used += size_bytes
            self._evict_to_fit()
        return False

    def peek(self, key: tuple[str, int]) -> bool:
        """Hit test without admission or LRU movement (what-if probing)."""
        return key in self._entries

    def invalidate(self, key: tuple[str, int]) -> None:
        size = self._entries.pop(key, None)
        if size is not None:
            self._used -= size

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0


@dataclass
class ExecutionReport:
    """Timing breakdown and work counters of one query execution."""

    elapsed_ms: float
    scan_ms: float
    probe_ms: float
    output_ms: float
    aggregate_ms: float
    overhead_ms: float
    work: WorkSummary = field(repr=False, default_factory=WorkSummary)


@dataclass
class QueryResult:
    """Result of executing one query."""

    row_count: int
    aggregate_value: float | str | None
    report: ExecutionReport
    #: materialised output columns; only populated when requested
    rows: dict[str, np.ndarray] | None = None


class QueryExecutor:
    """Executes queries against a set of tables with simulated timing."""

    def __init__(
        self,
        hardware: HardwareProfile,
        knobs: KnobRegistry,
        planner: QueryPlanner | None = None,
        use_kernel: bool = True,
    ) -> None:
        self._hardware = hardware
        self._knobs = knobs
        self._buffer_pool = BufferPool(knobs.get(BUFFER_POOL_KNOB))
        # a standalone executor (no owning Database) gets a private planner
        # with no epoch source, which compiles fresh on every query
        self._planner = planner if planner is not None else QueryPlanner()
        self._telemetry: "Telemetry | None" = None
        self._counters = None
        self._query_seq = 0
        self._validated: dict[Query, "TableSchema"] = {}
        #: run plans through the vectorized kernel (default) or the scalar
        #: per-chunk reference loop; both produce bit-identical results —
        #: the flag exists for golden tests and the e17 benchmark
        self.use_kernel = use_kernel

    @property
    def buffer_pool(self) -> BufferPool:
        return self._buffer_pool

    @property
    def planner(self) -> QueryPlanner:
        return self._planner

    def bind_telemetry(self, telemetry: "Telemetry | None") -> None:
        """Attach (or detach, with ``None``) the telemetry spine.

        While bound, every accounted execution bumps the ``exec_*`` work
        counters, and one per-query span is recorded every
        ``query_sample_every`` executions so production overhead stays
        bounded. Probe-mode (what-if) executions are never counted here:
        they are estimation work, tracked by the optimizer's own cache
        counters.
        """
        if telemetry is None or not telemetry.enabled:
            self._telemetry = None
            self._counters = None
            return
        self._telemetry = telemetry
        registry = telemetry.registry
        self._counters = (
            registry.counter("exec_queries"),
            registry.counter("exec_scan_units"),
            registry.counter("exec_probe_units"),
            registry.counter("exec_rows_matched"),
            registry.counter("exec_buffer_hits"),
            registry.counter("exec_buffer_misses"),
            registry.counter("exec_elapsed_sim_ms"),
            registry.counter("exec_sampled_spans"),
        )

    def sync_buffer_pool(self) -> None:
        """Re-read the buffer-pool knob (called after knob changes)."""
        self._buffer_pool.set_capacity(self._knobs.get(BUFFER_POOL_KNOB))

    def swap_buffer_pool(self, pool: BufferPool) -> BufferPool:
        """Install a different pool, returning the previous one.

        Used by the buffer-pool assessor to measure a candidate capacity on
        a scratch pool without disturbing the production pool's contents.
        """
        previous = self._buffer_pool
        self._buffer_pool = pool
        return previous

    def _validate(self, query: Query, table: Table) -> None:
        schema = table.schema
        for pred in query.predicates:
            if not schema.has_column(pred.column):
                raise ExecutionError(
                    f"query references unknown column {pred.column!r} "
                    f"of table {table.name!r}"
                )
        if query.projection:
            for name in query.projection:
                if not schema.has_column(name):
                    raise ExecutionError(
                        f"projection references unknown column {name!r}"
                    )
        if query.aggregate_column and not schema.has_column(query.aggregate_column):
            raise ExecutionError(
                f"aggregate references unknown column {query.aggregate_column!r}"
            )

    def _run_scalar(
        self,
        plan: PhysicalPlan,
        table: Table,
        threads: int,
        probe: bool,
        agg_spec: AggregateSpec | None,
        projected: list[str],
        materialize: bool,
    ) -> tuple[
        WorkSummary,
        float,
        float,
        list[np.ndarray],
        dict[str, list[np.ndarray]],
    ]:
        """The per-chunk reference loop (pre-kernel execution path).

        Retained verbatim as the golden reference the vectorized kernel is
        tested against, and as the ``use_kernel=False`` comparison arm of
        the e17 benchmark.
        """
        hardware = self._hardware
        work = WorkSummary()
        scan_ms = 0.0
        probe_ms = 0.0
        agg_values: list[np.ndarray] = []
        out_columns: dict[str, list[np.ndarray]] = {
            name: [] for name in projected
        }
        for chunk, step in zip(table.chunks(), plan.steps, strict=True):
            result = execute_step(chunk, step)
            work.chunks_visited += 1
            if result.used_index:
                work.chunks_via_index += 1
            work.per_chunk.append((chunk.chunk_id, step.kind))

            # tier and pool residency are bind-time facts, not plan facts
            tier, hit = resolve_tier(
                chunk, table.name, self._buffer_pool, admit=not probe
            )
            if hit is True:
                work.buffer_hits += 1
            elif hit is False:
                work.buffer_misses += 1

            work.scan_units += result.scan_units
            work.probe_units += result.probe_units
            scan_ms += hardware.scan_ms(result.scan_units, tier, threads)
            probe_ms += hardware.probe_ms(result.probe_units, tier)

            matched = result.positions
            work.rows_matched += len(matched)
            if len(matched) == 0:
                continue
            if agg_spec is not None:
                if agg_spec.column is not None:
                    agg_values.append(
                        chunk.segment(agg_spec.column).take(matched)
                    )
            else:
                # output sized from the plan's per-row statistics width, so
                # non-materialised runs never decode segments just to count
                # bytes — and pricing matches the cost model exactly
                work.output_bytes += len(matched) * step.output_width
                if materialize:
                    for name in projected:
                        out_columns[name].append(
                            chunk.segment(name).take(matched)
                        )
        return work, scan_ms, probe_ms, agg_values, out_columns

    def execute(
        self,
        query: Query,
        table: Table,
        materialize: bool = False,
        probe: bool = False,
    ) -> QueryResult:
        """Run ``query`` against ``table`` and price the work performed.

        With ``probe=True`` the buffer pool is only peeked, never mutated —
        used by the what-if optimizer so estimation leaves no trace.

        Plans run through the vectorized kernel (:mod:`repro.dbms.kernel`)
        unless :attr:`use_kernel` is off, in which case the scalar per-chunk
        reference loop runs; simulated results are bit-identical either way.
        """
        # validation memo: queries and schemas are immutable, so one pass
        # per (query, schema) pair settles it; schema replacement (a new
        # object) falls through to a fresh validation
        validated = self._validated
        if validated.get(query) is not table.schema:
            self._validate(query, table)
            validated[query] = table.schema
            if len(validated) > _VALIDATED_MEMO_CAPACITY:
                validated.pop(next(iter(validated)))
        hardware = self._hardware
        threads = int(self._knobs.get(SCAN_THREADS_KNOB))

        telemetry = self._telemetry if not probe else None
        sampled = False
        wall_started = 0.0
        if telemetry is not None:
            self._query_seq += 1
            every = telemetry.config.query_sample_every
            sampled = every > 0 and (self._query_seq - 1) % every == 0
            if sampled:
                wall_started = time.perf_counter()

        plan = self._planner.plan_for(query, table)
        # the aggregate spec and projected-column list derive from the
        # query and schema alone, both frozen for the plan's lifetime —
        # memoised on the plan object like its kernel arrays
        preamble = plan.__dict__.get("_exec_preamble")
        if preamble is None:
            agg_spec = (
                AggregateSpec(query.aggregate, query.aggregate_column)
                if query.aggregate
                else None
            )
            projected = (
                list(query.projection)
                if query.projection is not None
                else list(table.schema.column_names)
            )
            object.__setattr__(plan, "_exec_preamble", (agg_spec, projected))
        else:
            agg_spec, projected = preamble
        if self.use_kernel:
            work, scan_ms, probe_ms, agg_values, out_columns = run_plan(
                plan,
                table,
                self._buffer_pool,
                hardware,
                threads,
                probe,
                agg_spec,
                projected,
                materialize,
            )
        else:
            work, scan_ms, probe_ms, agg_values, out_columns = (
                self._run_scalar(
                    plan, table, threads, probe, agg_spec, projected,
                    materialize,
                )
            )

        aggregate_value: float | str | None = None
        aggregate_ms = 0.0
        if agg_spec is not None:
            aggregate_value = compute_aggregate(
                agg_values, agg_spec, work.rows_matched
            )
            work.aggregate_rows = work.rows_matched
            work.output_bytes += 8.0
            aggregate_ms = hardware.aggregate_ms(work.aggregate_rows)

        output_ms = hardware.output_ms(work.output_bytes)
        overhead_ms = hardware.overhead_ms()
        elapsed = scan_ms + probe_ms + output_ms + aggregate_ms + overhead_ms

        report = ExecutionReport(
            elapsed_ms=elapsed,
            scan_ms=scan_ms,
            probe_ms=probe_ms,
            output_ms=output_ms,
            aggregate_ms=aggregate_ms,
            overhead_ms=overhead_ms,
            work=work,
        )
        if telemetry is not None:
            counters = self._counters
            counters[0].inc()
            counters[1].inc(work.scan_units)
            counters[2].inc(work.probe_units)
            counters[3].inc(work.rows_matched)
            counters[4].inc(work.buffer_hits)
            counters[5].inc(work.buffer_misses)
            counters[6].inc(elapsed)
            if sampled:
                counters[7].inc()
                telemetry.tracer.record(
                    "query",
                    sim_ms=elapsed,
                    wall_s=time.perf_counter() - wall_started,
                    table=table.name,
                    rows=work.rows_matched,
                    chunks=work.chunks_visited,
                    via_index=work.chunks_via_index,
                    buffer_hits=work.buffer_hits,
                )
        rows = None
        if materialize and agg_spec is None:
            rows = {
                name: (
                    np.concatenate(parts)
                    if parts
                    else np.zeros(0, dtype=np.int64)
                )
                for name, parts in out_columns.items()
            }
        return QueryResult(
            row_count=work.rows_matched,
            aggregate_value=aggregate_value,
            report=report,
            rows=rows,
        )
