"""The catalog: a registry of tables by name."""

from __future__ import annotations

from repro.dbms.table import Table
from repro.errors import CatalogError


class Catalog:
    """Name → table registry with duplicate protection."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def register(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def tables(self) -> tuple[Table, ...]:
        return tuple(self._tables[name] for name in sorted(self._tables))

    def __len__(self) -> int:
        return len(self._tables)
