"""The DBMS substrate: a Hyrise-like chunked, columnar, in-memory engine.

This package is everything "below" the self-management framework: tables
split into chunks, segment encodings, per-chunk indexes, storage tiers,
knobs, a query executor with simulated timing, a plan cache, and the plugin
host the framework integrates through.
"""

from repro.dbms.catalog import Catalog
from repro.dbms.chunk import Chunk
from repro.dbms.database import Database
from repro.dbms.executor import BufferPool, ExecutionReport, QueryExecutor, QueryResult
from repro.dbms.hardware import DEFAULT_HARDWARE, HardwareProfile
from repro.dbms.index import SortedCompositeIndex
from repro.dbms.knobs import (
    BUFFER_POOL_KNOB,
    SCAN_THREADS_KNOB,
    Knob,
    KnobRegistry,
    standard_knobs,
)
from repro.dbms.plan_cache import PlanCacheEntry, QueryPlanCache
from repro.dbms.plugin import Plugin, PluginHost
from repro.dbms.schema import ColumnDefinition, TableSchema
from repro.dbms.segments import (
    EncodingType,
    Segment,
    encode_segment,
    supported_encodings,
)
from repro.dbms.statistics import ColumnStatistics
from repro.dbms.storage_tiers import StorageTier, migration_cost_ms
from repro.dbms.table import Table
from repro.dbms.types import DataType

__all__ = [
    "BUFFER_POOL_KNOB",
    "BufferPool",
    "Catalog",
    "Chunk",
    "ColumnDefinition",
    "ColumnStatistics",
    "DEFAULT_HARDWARE",
    "Database",
    "DataType",
    "EncodingType",
    "ExecutionReport",
    "HardwareProfile",
    "Knob",
    "KnobRegistry",
    "PlanCacheEntry",
    "Plugin",
    "PluginHost",
    "QueryExecutor",
    "QueryPlanCache",
    "QueryResult",
    "SCAN_THREADS_KNOB",
    "Segment",
    "SortedCompositeIndex",
    "StorageTier",
    "Table",
    "TableSchema",
    "encode_segment",
    "migration_cost_ms",
    "standard_knobs",
    "supported_encodings",
]
