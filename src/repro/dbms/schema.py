"""Table schemas: ordered column definitions with logical types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbms.types import DataType
from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnDefinition:
    """A single column: name and logical type."""

    name: str
    data_type: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """An ordered, immutable set of column definitions for one table."""

    name: str
    columns: tuple[ColumnDefinition, ...]
    _by_name: dict[str, ColumnDefinition] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name: {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        by_name: dict[str, ColumnDefinition] = {}
        for col in self.columns:
            if col.name in by_name:
                raise SchemaError(f"duplicate column {col.name!r} in table {self.name!r}")
            by_name[col.name] = col
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def build(cls, name: str, columns: list[tuple[str, DataType]]) -> "TableSchema":
        """Convenience constructor from ``[(name, type), ...]`` pairs."""
        return cls(name, tuple(ColumnDefinition(n, t) for n, t in columns))

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> ColumnDefinition:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def data_type(self, name: str) -> DataType:
        return self.column(name).data_type
