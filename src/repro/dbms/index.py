"""Per-chunk multi-attribute sorted indexes.

Index-selection candidates in the paper are "lists of attributes", so the
index structure is a composite sorted index over one or more columns of a
single chunk. Probes support equality on any key prefix and range predicates
on the first key column.

The index is built on each segment's :meth:`~repro.dbms.segments.Segment.
sort_key_array`, which for dictionary-encoded segments returns the narrow
order-preserving *codes* instead of decoded values. A dictionary-encoded
column therefore yields a smaller index with cheaper key comparisons — a
real, measurable interaction between the compression feature and the index
feature, which is exactly what the dependence ratios of Section III detect.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.dbms.segments import DictionarySegment, Segment
from repro.errors import IndexError_

#: Relative key-comparison cost when probing narrow dictionary codes.
_CODE_COMPARE_FACTOR = 0.6
_VALUE_COMPARE_FACTOR = 1.0


class SortedCompositeIndex:
    """A sorted composite index over the columns of one chunk."""

    def __init__(
        self,
        columns: tuple[str, ...],
        sorted_keys: list[np.ndarray],
        positions: np.ndarray,
        dictionaries: list[np.ndarray | None],
    ) -> None:
        self._columns = columns
        self._sorted_keys = sorted_keys
        self._positions = positions
        self._dictionaries = dictionaries
        # key-comparison work depends only on the index shape, so the
        # per-prefix-length totals are folded once at construction;
        # _probe_unit_prefix[k] is the cost of touching the first k columns
        n = max(len(positions), 2)
        prefix = [0.0]
        units = 0.0
        for col in range(len(columns)):
            factor = (
                _CODE_COMPARE_FACTOR
                if dictionaries[col] is not None
                else _VALUE_COMPARE_FACTOR
            )
            units += 2.0 * factor * float(np.log2(n))
            prefix.append(units)
        self._probe_unit_prefix = prefix

    @classmethod
    def build(
        cls, columns: Sequence[str], segments: Mapping[str, Segment]
    ) -> "SortedCompositeIndex":
        """Build an index over ``columns`` from the chunk's segments."""
        if not columns:
            raise IndexError_("an index needs at least one column")
        if len(set(columns)) != len(columns):
            raise IndexError_(f"duplicate columns in index key: {columns}")
        key_arrays: list[np.ndarray] = []
        dictionaries: list[np.ndarray | None] = []
        for name in columns:
            try:
                segment = segments[name]
            except KeyError:
                raise IndexError_(f"chunk has no column {name!r}") from None
            key_arrays.append(segment.sort_key_array())
            if isinstance(segment, DictionarySegment):
                dictionaries.append(segment.dictionary)
            else:
                dictionaries.append(None)
        # np.lexsort treats the *last* key as primary, so reverse.
        order = np.lexsort(tuple(reversed(key_arrays)))
        sorted_keys = [keys[order] for keys in key_arrays]
        positions = order.astype(np.uint32)
        return cls(tuple(columns), sorted_keys, positions, dictionaries)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._positions)

    def memory_bytes(self) -> int:
        """Positions plus the (possibly code-typed) key copies."""
        total = int(self._positions.nbytes)
        for keys in self._sorted_keys:
            total += int(keys.nbytes)
        return total

    # ------------------------------------------------------------------
    # probing

    def _range_for(
        self, col: int, op: str, value: object, lo: int, hi: int
    ) -> tuple[int, int]:
        """Half-open sorted-order range within ``[lo, hi)`` where column
        ``col`` satisfies ``<op> value``. Requires the slice to be sorted on
        that column (true for col 0 globally, and for any column within a
        group of equal preceding keys)."""
        keys = self._sorted_keys[col][lo:hi]
        dictionary = self._dictionaries[col]
        if dictionary is not None:
            left = int(dictionary.searchsorted(value, side="left"))
            right = int(dictionary.searchsorted(value, side="right"))
            if op == "=":
                if left == right:  # literal not in dictionary
                    return lo, lo
                a = int(keys.searchsorted(left, side="left"))
                b = int(keys.searchsorted(left, side="right"))
                return lo + a, lo + b
            if op == "<":
                return lo, lo + int(keys.searchsorted(left, side="left"))
            if op == "<=":
                return lo, lo + int(keys.searchsorted(right, side="left"))
            if op == ">":
                return lo + int(keys.searchsorted(right, side="left")), hi
            if op == ">=":
                return lo + int(keys.searchsorted(left, side="left")), hi
            raise IndexError_(f"index probe does not support operator {op!r}")
        if op == "=":
            a = int(keys.searchsorted(value, side="left"))
            b = int(keys.searchsorted(value, side="right"))
            return lo + a, lo + b
        if op == "<":
            return lo, lo + int(keys.searchsorted(value, side="left"))
        if op == "<=":
            return lo, lo + int(keys.searchsorted(value, side="right"))
        if op == ">":
            return lo + int(keys.searchsorted(value, side="right")), hi
        if op == ">=":
            return lo + int(keys.searchsorted(value, side="left")), hi
        raise IndexError_(f"index probe does not support operator {op!r}")

    def lookup(
        self,
        equal_prefix: Sequence[object],
        range_predicates: Sequence[tuple[str, object]] = (),
    ) -> np.ndarray:
        """Row positions matching equality on the first ``len(equal_prefix)``
        key columns, optionally refined by range predicates on the next key
        column.

        ``lookup(("de", 7))`` finds rows where col0 = "de" and col1 = 7;
        ``lookup(("de",), [(">=", 7), ("<", 20)])`` finds rows where
        col0 = "de" and 7 <= col1 < 20 (a two-sided range, e.g. from
        ``BETWEEN``); ``lookup((), [("<", 7)])`` is a pure range probe on
        the first column.
        """
        if len(equal_prefix) > len(self._columns):
            raise IndexError_(
                f"prefix of {len(equal_prefix)} values exceeds "
                f"{len(self._columns)} key columns"
            )
        lo, hi = 0, len(self._positions)
        for col, value in enumerate(equal_prefix):
            lo, hi = self._range_for(col, "=", value, lo, hi)
            if lo >= hi:
                return self._positions[:0]
        if range_predicates:
            col = len(equal_prefix)
            if col >= len(self._columns):
                raise IndexError_(
                    "range predicate exceeds the index key columns"
                )
            for op, value in range_predicates:
                lo, hi = self._range_for(col, op, value, lo, hi)
                if lo >= hi:
                    return self._positions[:0]
        return self._positions[lo:hi]

    def probe_cost_units(self, probed_columns: int, rows_out: int) -> float:
        """Abstract work units for one probe touching ``probed_columns`` key
        columns and producing ``rows_out`` positions."""
        units = self._probe_unit_prefix[min(probed_columns, len(self._columns))]
        # fetching one matched position is a sequential read of the sorted
        # positions array — far cheaper than a key comparison
        return units + 0.1 * rows_out

    @staticmethod
    def supports_operator(op: str) -> bool:
        """``!=`` cannot be answered by a contiguous sorted-range probe."""
        return op in ("=", "<", "<=", ">", ">=")

    def __repr__(self) -> str:
        return (
            f"SortedCompositeIndex(columns={self._columns}, "
            f"rows={len(self)}, bytes={self.memory_bytes()})"
        )
