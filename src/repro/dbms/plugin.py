"""Plugin infrastructure.

The paper's implementation strategy (Section II-B) attaches self-management
through Hyrise's plugin mechanism: plugins get direct access to database
internals without the self-management code being compiled into the core.
:class:`PluginHost` reproduces that contract — plugins are attached at
runtime, receive the :class:`~repro.dbms.database.Database` object itself
(full internal access, no indirection layer), and can be detached leaving
the database untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import PluginError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dbms.database import Database


class Plugin(ABC):
    """Base class for database plugins."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Unique plugin name."""

    @abstractmethod
    def on_attach(self, database: "Database") -> None:
        """Called when the plugin is loaded into a running database."""

    def on_detach(self) -> None:
        """Called when the plugin is unloaded. Default: nothing to clean up."""

    def on_tick(self, now_ms: float) -> None:
        """Called periodically by the simulation loop. Default: no-op."""


class PluginHost:
    """Loads and unloads plugins at database runtime."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._plugins: dict[str, Plugin] = {}

    def attach(self, plugin: Plugin) -> None:
        if plugin.name in self._plugins:
            raise PluginError(f"plugin {plugin.name!r} already attached")
        plugin.on_attach(self._database)
        self._plugins[plugin.name] = plugin

    def detach(self, name: str) -> None:
        plugin = self._plugins.pop(name, None)
        if plugin is None:
            raise PluginError(f"plugin {name!r} is not attached")
        plugin.on_detach()

    def is_attached(self, name: str) -> bool:
        return name in self._plugins

    def plugin(self, name: str) -> Plugin:
        try:
            return self._plugins[name]
        except KeyError:
            raise PluginError(f"plugin {name!r} is not attached") from None

    def plugin_names(self) -> tuple[str, ...]:
        return tuple(self._plugins)

    def tick(self, now_ms: float) -> None:
        for plugin in list(self._plugins.values()):
            plugin.on_tick(now_ms)
