"""Workload-level cost aggregation helpers.

These small functions implement the quantities Section III computes with:
``W_∅`` (workload cost without optimization), ``W_A`` (after tuning feature
A), robust cost summaries across scenarios, and the per-query adapter that
lets any pricing callable be used uniformly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.cost.base import CostEstimator
from repro.forecasting.scenarios import Forecast, WorkloadScenario
from repro.workload.query import Query

#: Anything that prices one query in simulated milliseconds.
QueryCostFn = Callable[[Query], float]


def estimator_cost_fn(estimator: CostEstimator) -> QueryCostFn:
    return estimator.estimate_query_ms


def scenario_cost_ms(
    cost_fn: QueryCostFn,
    scenario: WorkloadScenario,
    sample_queries: Mapping[str, Query],
) -> float:
    """Frequency-weighted cost of one scenario."""
    total = 0.0
    for key, frequency in scenario.frequencies.items():
        query = sample_queries.get(key)
        if query is None or frequency <= 0:
            continue
        total += frequency * cost_fn(query)
    return total


def forecast_costs(cost_fn: QueryCostFn, forecast: Forecast) -> dict[str, float]:
    """Scenario name → workload cost for every scenario of a forecast."""
    return {
        scenario.name: scenario_cost_ms(
            cost_fn, scenario, forecast.sample_queries
        )
        for scenario in forecast.scenarios
    }


def expected_cost_ms(cost_fn: QueryCostFn, forecast: Forecast) -> float:
    """Probability-weighted cost over all scenarios."""
    costs = forecast_costs(cost_fn, forecast)
    return sum(s.probability * costs[s.name] for s in forecast.scenarios)


def worst_scenario_cost_ms(cost_fn: QueryCostFn, forecast: Forecast) -> float:
    """The maximum scenario cost (robust worst-case criterion)."""
    costs = forecast_costs(cost_fn, forecast)
    return max(costs.values())
