"""Adaptive learned cost model.

"The proposed cost models can be created adaptively by learning from
observed query execution costs. At database system start, a minimal set of
queries is run to create training data … during further database operation
more data points are collected, thus enabling more specialized models"
(Section II-A.d). This model extracts a feature vector per query from the
current physical configuration, observes real execution times, and refits a
linear regression (the paper's own baseline choice [13]) on demand.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.dbms.knobs import SCAN_THREADS_KNOB
from repro.dbms.storage_tiers import TIER_LATENCY_MULTIPLIER
from repro.plan.ir import StepKind
from repro.errors import CalibrationError
from repro.workload.query import Query

#: Minimum observations before the first fit is attempted.
MIN_OBSERVATIONS = 8


class LearnedCostModel(CostEstimator):
    """Linear regression on configuration-aware query features."""

    name = "learned"

    #: feature names, in vector order (useful for inspection/tests)
    FEATURE_NAMES = (
        "bias",
        "rows_total",
        "rows_scanned_est",
        "rows_matched_est",
        "eq_predicates",
        "range_predicates",
        "index_chunk_fraction",
        "mean_tier_multiplier",
        "inverse_threads",
        "is_aggregate",
    )

    def __init__(
        self,
        database: Database,
        refit_every: int = 16,
        max_observations: int = 4096,
    ) -> None:
        if refit_every < 1:
            raise CalibrationError("refit_every must be at least 1")
        self._db = database
        self._refit_every = refit_every
        self._max_observations = max_observations
        self._features: list[np.ndarray] = []
        self._targets: list[float] = []
        self._coefficients: np.ndarray | None = None
        self._since_fit = 0

    # ------------------------------------------------------------------
    # feature extraction

    def features(self, query: Query) -> np.ndarray:
        db = self._db
        table = db.table(query.table)
        rows = float(table.row_count)
        live = rows
        scanned = 0.0
        for pred in query.predicates:
            scanned += live
            live *= table.statistics(pred.column).selectivity(
                pred.op, pred.value
            )
        if not query.predicates:
            scanned = rows
        chunks = table.chunks()
        # the compiled plan (shared with the executor and the physical
        # model) already knows which chunks go through an index probe
        plan = db.planner.plan_for(query, table)
        indexed = plan.count(StepKind.INDEX_PROBE)
        tier_mult = (
            float(
                np.mean([TIER_LATENCY_MULTIPLIER[c.tier] for c in chunks])
            )
            if chunks
            else 1.0
        )
        threads = float(db.knobs.get(SCAN_THREADS_KNOB))
        n_eq = sum(1 for p in query.predicates if p.op == "=")
        return np.array(
            [
                1.0,
                rows / 1e6,
                scanned / 1e6,
                live / 1e6,
                float(n_eq),
                float(len(query.predicates) - n_eq),
                indexed / max(len(chunks), 1),
                tier_mult,
                1.0 / threads,
                1.0 if query.aggregate else 0.0,
            ]
        )

    # ------------------------------------------------------------------
    # learning

    @property
    def observation_count(self) -> int:
        return len(self._targets)

    @property
    def is_fitted(self) -> bool:
        return self._coefficients is not None

    def observe(self, query: Query, elapsed_ms: float) -> None:
        """Record one observed execution; refits periodically."""
        self._features.append(self.features(query))
        self._targets.append(float(elapsed_ms))
        if len(self._targets) > self._max_observations:
            del self._features[: self._max_observations // 4]
            del self._targets[: self._max_observations // 4]
        self._since_fit += 1
        if (
            len(self._targets) >= MIN_OBSERVATIONS
            and self._since_fit >= self._refit_every
        ):
            self.refit()

    def refit(self) -> None:
        if len(self._targets) < MIN_OBSERVATIONS:
            raise CalibrationError(
                f"need at least {MIN_OBSERVATIONS} observations, have "
                f"{len(self._targets)}"
            )
        design = np.vstack(self._features)
        target = np.array(self._targets)
        coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        self._coefficients = coefficients
        self._since_fit = 0

    def estimate_query_ms(self, query: Query) -> float:
        if self._coefficients is None:
            raise CalibrationError(
                "learned model has not been fitted; run calibration first"
            )
        estimate = float(self.features(query) @ self._coefficients)
        return max(estimate, self._db.hardware.overhead_ms())
