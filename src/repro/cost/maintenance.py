"""Adaptive cost-model maintenance (Section V future work, implemented).

"We currently work on an approach to adaptive cost estimation where costs
for the processing of every operation are logged during database operation.
Subsequently, this data is used to generate updated accurate cost models
from time to time."

:class:`AdaptiveCostMaintenancePlugin` attaches to a database, runs the
startup calibration suite once, and on every tick harvests new executions
from the plan cache (snapshot diffs — the same zero-overhead channel the
workload predictor uses) into its :class:`~repro.cost.learned.
LearnedCostModel`, refitting periodically. The maintained model can be
handed to estimator-backed assessors for fast (non-measuring) tuning runs.
"""

from __future__ import annotations

from repro.cost.calibration import run_startup_calibration
from repro.cost.learned import LearnedCostModel
from repro.dbms.database import Database
from repro.dbms.plugin import Plugin
from repro.errors import PluginError


class AdaptiveCostMaintenancePlugin(Plugin):
    """Keeps a learned cost model trained on live executions."""

    def __init__(
        self,
        calibrate_on_attach: bool = True,
        refit_every: int = 16,
        calibration_seed: int = 0,
    ) -> None:
        self._calibrate_on_attach = calibrate_on_attach
        self._refit_every = refit_every
        self._calibration_seed = calibration_seed
        self._db: Database | None = None
        self._model: LearnedCostModel | None = None
        self._last_counts: dict[str, int] = {}
        self.observations_harvested = 0

    @property
    def name(self) -> str:
        return "adaptive-cost-maintenance"

    @property
    def model(self) -> LearnedCostModel:
        if self._model is None:
            raise PluginError("plugin is not attached to a database")
        return self._model

    def on_attach(self, database: Database) -> None:
        self._db = database
        self._model = LearnedCostModel(database, refit_every=self._refit_every)
        if self._calibrate_on_attach:
            run_startup_calibration(
                database, self._model, seed=self._calibration_seed
            )
        self._last_counts = {
            key: count
            for key, (count, _ms) in database.plan_cache.snapshot().items()
        }

    def on_detach(self) -> None:
        self._db = None

    def on_tick(self, now_ms: float) -> None:
        """Harvest executions that happened since the last tick.

        The plan cache stores per-template aggregates, so per-execution
        costs are approximated by the template's latest execution time —
        the logging granularity the paper's plan-cache channel offers.
        """
        del now_ms
        if self._db is None or self._model is None:
            return
        for entry in self._db.plan_cache.entries():
            key = entry.template.key
            previous = self._last_counts.get(key, 0)
            new_executions = entry.execution_count - previous
            if new_executions <= 0:
                continue
            self._last_counts[key] = entry.execution_count
            # one observation per template per tick keeps the training set
            # balanced across templates regardless of their frequency
            self._model.observe(entry.sample_query, entry.last_ms)
            self.observations_harvested += 1
