"""Cost estimators: logical, physical, learned, and the what-if optimizer."""

from repro.cost.base import CostEstimator
from repro.cost.calibration import (
    calibration_queries,
    run_design_exploration,
    run_startup_calibration,
)
from repro.cost.learned import LearnedCostModel
from repro.cost.logical import LogicalCostModel
from repro.cost.maintenance import AdaptiveCostMaintenancePlugin
from repro.cost.physical import PhysicalCostModel
from repro.cost.what_if import WhatIfCacheStats, WhatIfOptimizer
from repro.cost.workload_cost import (
    QueryCostFn,
    estimator_cost_fn,
    expected_cost_ms,
    forecast_costs,
    scenario_cost_ms,
    worst_scenario_cost_ms,
)

__all__ = [
    "AdaptiveCostMaintenancePlugin",
    "CostEstimator",
    "LearnedCostModel",
    "LogicalCostModel",
    "PhysicalCostModel",
    "QueryCostFn",
    "WhatIfCacheStats",
    "WhatIfOptimizer",
    "calibration_queries",
    "estimator_cost_fn",
    "expected_cost_ms",
    "forecast_costs",
    "run_design_exploration",
    "run_startup_calibration",
    "scenario_cost_ms",
    "worst_scenario_cost_ms",
]
