"""The hardware-dependent (physical) cost model.

Walks the same per-chunk plan choice as the executor but *estimates* row
counts from chunk statistics instead of touching data: it sees encodings,
indexes, tiers, buffer-pool residency, and the thread knob. This is the
"hardware-dependent cost model … necessary to ensure a maximum of
precision" of Section II-A.d; its errors against observed runtimes come
purely from selectivity estimation.
"""

from __future__ import annotations

from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.dbms.knobs import SCAN_THREADS_KNOB
from repro.dbms.operators import (
    _PRUNE_CHECK_UNITS,
    choose_index_plan,
    chunk_can_be_pruned,
)
from repro.dbms.storage_tiers import StorageTier
from repro.workload.query import Query


class PhysicalCostModel(CostEstimator):
    """Analytic per-chunk estimation mirroring the execution engine."""

    name = "physical"

    def __init__(self, database: Database) -> None:
        self._db = database

    def estimate_query_ms(self, query: Query) -> float:
        db = self._db
        table = db.table(query.table)
        hardware = db.hardware
        threads = int(db.knobs.get(SCAN_THREADS_KNOB))
        total = hardware.overhead_ms()
        matched_total = 0.0
        output_bytes = 0.0

        for chunk in table.chunks():
            tier = chunk.tier
            if tier is not StorageTier.DRAM and db.executor.buffer_pool.peek(
                (table.name, chunk.chunk_id)
            ):
                tier = StorageTier.DRAM

            if query.predicates and chunk_can_be_pruned(
                chunk, list(query.predicates)
            ):
                total += hardware.scan_ms(
                    _PRUNE_CHECK_UNITS * len(query.predicates), tier, threads
                )
                continue

            scan_units = 0.0
            probe_units = 0.0
            plan = choose_index_plan(chunk, list(query.predicates))
            if plan is not None:
                live = chunk.row_count * plan.estimated_selectivity
                probe_units += plan.index.probe_cost_units(
                    plan.probed_columns, int(live)
                )
                for pred in plan.residual:
                    segment = chunk.segment(pred.column)
                    scan_units += segment.scan_units(int(live))
                    scan_units += segment.scan_overhead_units()
                    live *= chunk.statistics(pred.column).selectivity(
                        pred.op, pred.value
                    )
            else:
                live = float(chunk.row_count)
                for pred in query.predicates:
                    segment = chunk.segment(pred.column)
                    scan_units += segment.scan_units(int(live))
                    scan_units += segment.scan_overhead_units()
                    live *= chunk.statistics(pred.column).selectivity(
                        pred.op, pred.value
                    )

            total += hardware.scan_ms(scan_units, tier, threads)
            total += hardware.probe_ms(probe_units, tier)
            matched_total += live
            if query.aggregate is None:
                projected = (
                    query.projection
                    if query.projection is not None
                    else table.schema.column_names
                )
                # Per-value output width from catalog statistics; decoding
                # segments just to read dtype widths would defeat the
                # purpose of an analytic model.
                width = sum(
                    chunk.statistics(name).avg_item_bytes for name in projected
                )
                output_bytes += live * width

        if query.aggregate is not None:
            total += hardware.aggregate_ms(matched_total)
            output_bytes += 8.0
        total += hardware.output_ms(output_bytes)
        return total
