"""The hardware-dependent (physical) cost model.

Prices the *same compiled plan* the executor runs — obtained from the
shared :class:`~repro.plan.planner.QueryPlanner` — but *estimates* row
counts from chunk statistics instead of touching data: it sees encodings,
indexes, tiers, buffer-pool residency, and the thread knob. This is the
"hardware-dependent cost model … necessary to ensure a maximum of
precision" of Section II-A.d; because access-path choice is compiled once
and shared, its errors against observed runtimes come purely from
selectivity estimation, never from the model picking a different plan
than the engine.
"""

from __future__ import annotations

from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.dbms.knobs import SCAN_THREADS_KNOB
from repro.plan.binder import resolve_tier
from repro.plan.ir import PRUNE_CHECK_UNITS, PlanStep, StepKind
from repro.workload.query import Query


class PhysicalCostModel(CostEstimator):
    """Analytic pricing of compiled plans from chunk statistics."""

    name = "physical"

    def __init__(self, database: Database) -> None:
        self._db = database

    def _estimate_step(
        self, chunk, step: PlanStep
    ) -> tuple[float, float, float]:
        """Estimated ``(scan_units, probe_units, rows_out)`` of one step."""
        if step.kind is StepKind.PRUNE:
            return PRUNE_CHECK_UNITS * step.predicate_count, 0.0, 0.0
        scan_units = 0.0
        probe_units = 0.0
        if step.kind is StepKind.INDEX_PROBE:
            live = chunk.row_count * step.estimated_selectivity
            # bind-time index lookup: indexes are rebuilt by re-encodes and
            # sorts, so the plan stores key columns, not index objects
            index = chunk.index(step.index_key)
            probe_units += index.probe_cost_units(
                step.probed_columns, int(live)
            )
        else:
            live = float(chunk.row_count)
        for pred in step.scan_predicates:
            segment = chunk.segment(pred.column)
            scan_units += segment.scan_units(int(live))
            scan_units += segment.scan_overhead_units()
            live *= chunk.statistics(pred.column).selectivity(
                pred.op, pred.value
            )
        return scan_units, probe_units, live

    def estimate_query_ms(self, query: Query) -> float:
        db = self._db
        table = db.table(query.table)
        hardware = db.hardware
        threads = int(db.knobs.get(SCAN_THREADS_KNOB))
        pool = db.executor.buffer_pool
        total = hardware.overhead_ms()
        matched_total = 0.0
        output_bytes = 0.0

        plan = db.planner.plan_for(query, table)
        for chunk, step in zip(table.chunks(), plan.steps, strict=True):
            # analytic pricing never mutates the pool: peek, don't admit
            tier, _hit = resolve_tier(chunk, table.name, pool, admit=False)
            scan_units, probe_units, live = self._estimate_step(chunk, step)
            total += hardware.scan_ms(scan_units, tier, threads)
            total += hardware.probe_ms(probe_units, tier)
            matched_total += live
            # per-row projected width comes from the plan (chunk statistics
            # at compile time); zero for aggregates
            output_bytes += live * step.output_width

        if query.aggregate is not None:
            total += hardware.aggregate_ms(matched_total)
            output_bytes += 8.0
        total += hardware.output_ms(output_bytes)
        return total
