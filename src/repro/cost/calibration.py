"""Startup calibration for learned cost models.

"At database system start, a minimal set of queries is run to create
training data for a specialized cost model" (Section II-A.d). The suite
probes every table with full scans, per-column point and range predicates,
and aggregates, executes them, and feeds (features, runtime) pairs to a
:class:`~repro.cost.learned.LearnedCostModel`.
"""

from __future__ import annotations


from repro.cost.learned import LearnedCostModel
from repro.dbms.database import Database
from repro.util.rng import derive_rng
from repro.workload.predicate import Predicate
from repro.workload.query import Query


def calibration_queries(db: Database, seed: int = 0) -> list[Query]:
    """A minimal query suite touching every table and column."""
    rng = derive_rng(seed, "calibration")
    queries: list[Query] = []
    for table in db.catalog.tables():
        queries.append(Query(table.name, aggregate="count"))
        for column in table.schema.column_names:
            stats = table.statistics(column)
            if stats.row_count == 0:
                continue
            if stats.data_type.is_numeric:
                lo = float(stats.min_value)
                hi = float(stats.max_value)
                point = lo + (hi - lo) * float(rng.uniform(0.2, 0.8))
                if stats.data_type.value == "int":
                    point = int(round(point))
                queries.append(
                    Query(
                        table.name,
                        (Predicate(column, "=", point),),
                        aggregate="count",
                    )
                )
                threshold = lo + (hi - lo) * float(rng.uniform(0.6, 0.95))
                if stats.data_type.value == "int":
                    threshold = int(round(threshold))
                queries.append(
                    Query(
                        table.name,
                        (Predicate(column, ">=", threshold),),
                        aggregate="count",
                    )
                )
            else:
                queries.append(
                    Query(
                        table.name,
                        (Predicate(column, "=", str(stats.min_value)),),
                        aggregate="count",
                    )
                )
    return queries


def run_startup_calibration(
    db: Database, model: LearnedCostModel, seed: int = 0
) -> int:
    """Execute the calibration suite, feed the model, and fit it.

    Returns the number of executed calibration queries. Executions are
    accounted (they happen at system start, on the real database).
    """
    queries = calibration_queries(db, seed)
    for query in queries:
        result = db.execute(query)
        model.observe(query, result.report.elapsed_ms)
    model.refit()
    return len(queries)


def run_design_exploration(
    db: Database, model: LearnedCostModel, seed: int = 0, columns_per_table: int = 3
) -> int:
    """Extend calibration with observations under *hypothetical* designs.

    A model trained only on the current configuration cannot price features
    it has never seen active (its index-coverage feature is constant zero).
    This pass temporarily builds an index per sampled column, probes the
    calibration queries against it, feeds the observations, and rolls the
    index back — all unaccounted, like any what-if measurement. Returns the
    number of observations added.
    """
    queries = calibration_queries(db, seed)
    observations = 0
    for table in db.catalog.tables():
        numeric = [
            column
            for column in table.schema.column_names
            if table.schema.data_type(column).is_numeric
        ][:columns_per_table]
        for column in numeric:
            already_indexed = all(
                chunk.has_index([column]) for chunk in table.chunks()
            )
            if already_indexed:
                continue
            created = table.create_index([column])
            # the index is built on the table directly (unaccounted), so
            # the plan epoch must be bumped by hand — probes and feature
            # extraction would otherwise run stale compiled plans
            db.bump_plan_epoch()
            try:
                for query in queries:
                    if query.table != table.name:
                        continue
                    if not any(p.column == column for p in query.predicates):
                        continue
                    result = db.executor.execute(query, table, probe=True)
                    model.observe(query, result.report.elapsed_ms)
                    observations += 1
            finally:
                table.drop_index(
                    [column], [chunk.chunk_id for chunk in created]
                )
                db.bump_plan_epoch()
    if observations:
        model.refit()
    return observations
