"""Cost estimator interface.

"Cost estimation must be involved at every stage of the tuning process …
cost must be estimated in the same unit, for instance, runtime"
(Section II-A.d). Every estimator in this package prices one query in
simulated milliseconds under the database's *current* configuration; the
what-if optimizer wraps estimators to price hypothetical configurations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.workload.query import Query


class CostEstimator(ABC):
    """Prices a query under the current configuration."""

    #: short identifier for reports
    name: str = "estimator"

    @abstractmethod
    def estimate_query_ms(self, query: Query) -> float:
        """Estimated runtime of one execution of ``query``."""

    def estimate_workload_ms(
        self, frequencies: dict[str, float], sample_queries: dict[str, Query]
    ) -> float:
        """Estimated cost of a frequency-weighted workload.

        Templates without a sample query cannot be priced and are skipped.
        """
        total = 0.0
        for key, frequency in frequencies.items():
            query = sample_queries.get(key)
            if query is None or frequency <= 0:
                continue
            total += frequency * self.estimate_query_ms(query)
        return total
