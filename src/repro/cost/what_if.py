"""The what-if optimizer: costs under hypothetical configurations.

Classic what-if optimization [Chaudhuri & Narasayya, VLDB'97] prices a
query as if a candidate structure existed. Here the hypothetical
configuration is *actually built* (cheaply, in the simulator) through the
raw/unaccounted action path, costs are taken with zero side effects
(probe-mode execution or an analytic estimator), and the inverse delta
restores the previous state — the simulated clock, counters, plan cache,
and buffer pool never notice.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.configuration.delta import ConfigurationDelta
from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast, WorkloadScenario
from repro.workload.query import Query


class WhatIfOptimizer:
    """Prices queries and workloads under hypothetical configurations."""

    def __init__(
        self, database: Database, estimator: CostEstimator | None = None
    ) -> None:
        """With ``estimator=None`` costs are *measured* by probe-mode
        execution against real data (exact in the simulator); otherwise the
        given analytic estimator prices queries (faster, approximate)."""
        self._db = database
        self._estimator = estimator

    @property
    def database(self) -> Database:
        return self._db

    @property
    def is_measured(self) -> bool:
        """True when costs come from probe-mode execution, not a model."""
        return self._estimator is None

    def query_cost_ms(self, query: Query) -> float:
        if self._estimator is not None:
            return self._estimator.estimate_query_ms(query)
        table = self._db.table(query.table)
        result = self._db.executor.execute(query, table, probe=True)
        return result.report.elapsed_ms

    def scenario_cost_ms(
        self, scenario: WorkloadScenario, sample_queries: dict[str, Query]
    ) -> float:
        """Frequency-weighted workload cost of one scenario."""
        total = 0.0
        for key, frequency in scenario.frequencies.items():
            if frequency <= 0:
                continue
            query = sample_queries.get(key)
            if query is None:
                continue
            total += frequency * self.query_cost_ms(query)
        return total

    def forecast_costs(self, forecast: Forecast) -> dict[str, float]:
        """Workload cost per scenario of the forecast."""
        return {
            scenario.name: self.scenario_cost_ms(
                scenario, dict(forecast.sample_queries)
            )
            for scenario in forecast.scenarios
        }

    def expected_forecast_cost(self, forecast: Forecast) -> float:
        """Probability-weighted cost across all scenarios."""
        costs = self.forecast_costs(forecast)
        return sum(
            scenario.probability * costs[scenario.name]
            for scenario in forecast.scenarios
        )

    # ------------------------------------------------------------------
    # hypothetical configurations

    @contextmanager
    def hypothetical(
        self, delta: ConfigurationDelta
    ) -> Iterator["WhatIfOptimizer"]:
        """Apply ``delta`` raw, yield, then roll back. Nestable."""
        inverse = delta.apply_raw(self._db)
        try:
            yield self
        finally:
            inverse.apply_raw(self._db)

    def cost_with(
        self,
        delta: ConfigurationDelta,
        scenario: WorkloadScenario,
        sample_queries: dict[str, Query],
    ) -> float:
        """Scenario cost as if ``delta`` were applied."""
        with self.hypothetical(delta):
            return self.scenario_cost_ms(scenario, sample_queries)
