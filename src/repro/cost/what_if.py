"""The what-if optimizer: costs under hypothetical configurations.

Classic what-if optimization [Chaudhuri & Narasayya, VLDB'97] prices a
query as if a candidate structure existed. Here the hypothetical
configuration is *actually built* (cheaply, in the simulator) through the
raw/unaccounted action path, costs are taken with zero side effects
(probe-mode execution or an analytic estimator), and the inverse delta
restores the previous state — the simulated clock, counters, plan cache,
and buffer pool never notice.

Measured (probe-mode) costs are memoised in an LRU cache keyed on
``(config_epoch, query)``: the database's configuration epoch identifies
the pricing-relevant state, so repeated pricing of the same query under
the same (hypothetical) configuration — the dominant pattern in
dependence measurement, candidate assessment, and trigger evaluation —
becomes a dict hit. The cache is semantically invisible: every mutation
that can change a probe-mode cost bumps the epoch, and
:meth:`WhatIfOptimizer.hypothetical` restores the pre-delta epoch after
rollback only when the rollback was exact (see the buffer-pool guard).
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.configuration.delta import ConfigurationDelta
from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast, WorkloadScenario
from repro.kpi.metrics import (
    WHATIF_CACHE_EVICTIONS,
    WHATIF_CACHE_HITS,
    WHATIF_CACHE_MISSES,
    WHATIF_CACHE_SIZE,
    WHATIF_SCENARIO_COVERAGE,
)
from repro.telemetry.metrics import MetricRegistry
from repro.workload.query import Query

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

#: Default bound on cached ``(config_epoch, query)`` cost entries.
DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class WhatIfCacheStats:
    """Cumulative counters of the what-if cost cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pricings answered from the cache; 0 when unused."""
        priced = self.hits + self.misses
        return self.hits / priced if priced else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "size": float(self.size),
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def aggregate(
        cls, stats: Iterable["WhatIfCacheStats"]
    ) -> "WhatIfCacheStats":
        """Fleet rollup: field-wise sum over per-tenant cache stats.

        Each tenant's optimizer owns its own cache and stats; the fleet
        view is this explicit sum, with ``hit_rate`` derived from the
        summed hits/misses rather than averaged per tenant.
        """
        hits = misses = evictions = size = 0
        for s in stats:
            hits += s.hits
            misses += s.misses
            evictions += s.evictions
            size += s.size
        return cls(hits=hits, misses=misses, evictions=evictions, size=size)


class WhatIfOptimizer:
    """Prices queries and workloads under hypothetical configurations."""

    def __init__(
        self,
        database: Database,
        estimator: CostEstimator | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        registry: MetricRegistry | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        """With ``estimator=None`` costs are *measured* by probe-mode
        execution against real data (exact in the simulator); otherwise the
        given analytic estimator prices queries (faster, approximate).

        ``cache_size`` bounds the epoch-keyed cost cache for the measured
        path (0 disables caching). Analytic estimates are never cached:
        they are cheap and estimators may be stateful (learned models).

        ``registry`` is the telemetry registry the cache counters live in
        (the driver passes its shared one); without it the optimizer keeps
        a private registry and can be surfaced later via
        :meth:`bind_registry`.

        ``injector`` perturbs measured probe costs with seeded latency
        spikes (see :meth:`FaultInjector.probe_spike_ms`), modelling the
        measurement noise of what-if probing on a loaded system.
        """
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._db = database
        self._estimator = estimator
        self._injector = injector
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[int, Query], float] = OrderedDict()
        self._registry = registry if registry is not None else MetricRegistry()
        self._hits = self._registry.counter(WHATIF_CACHE_HITS)
        self._misses = self._registry.counter(WHATIF_CACHE_MISSES)
        self._evictions = self._registry.counter(WHATIF_CACHE_EVICTIONS)
        self._size_gauge = self._registry.gauge(
            WHATIF_CACHE_SIZE, self._cache_len
        )
        # coverage of the most recent scenario pricing; 1.0 until a
        # scenario with missing sample queries is priced
        self._coverage_gauge = self._registry.gauge(WHATIF_SCENARIO_COVERAGE)
        self._coverage_gauge.set(1.0)

    def _cache_len(self) -> float:
        """Picklable gauge callback (bound method, not a lambda)."""
        return float(len(self._cache))

    @property
    def database(self) -> Database:
        return self._db

    @property
    def is_measured(self) -> bool:
        """True when costs come from probe-mode execution, not a model."""
        return self._estimator is None

    # ------------------------------------------------------------------
    # cache observability

    @property
    def cache_size(self) -> int:
        """Configured LRU bound of the cost cache (0 = disabled)."""
        return self._cache_size

    @property
    def cache_stats(self) -> WhatIfCacheStats:
        return WhatIfCacheStats(
            hits=int(self._hits.value),
            misses=int(self._misses.value),
            evictions=int(self._evictions.value),
            size=len(self._cache),
        )

    @property
    def registry(self) -> MetricRegistry:
        """The registry holding the cache counters."""
        return self._registry

    def bind_registry(
        self, registry: MetricRegistry, replace: bool = False
    ) -> None:
        """Surface the cache counters through ``registry`` as well.

        Adopts the existing counter/gauge *objects*, so counts stay
        continuous and bumps are visible through both registries.
        Idempotent when the counters are already registered there (the
        driver wires one shared registry everywhere, making every later
        bind a no-op). ``replace=True`` rebinds names held by another
        optimizer's counters (re-attach semantics).
        """
        if registry is self._registry:
            return
        for metric in (
            self._hits,
            self._misses,
            self._evictions,
            self._size_gauge,
            self._coverage_gauge,
        ):
            registry.adopt(metric, replace=replace)

    def clear_cache(self) -> None:
        """Drop all cached costs (counters are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # pricing

    def _measured_cost(self, query: Query) -> float:
        """One probe-mode execution, with injected measurement noise."""
        table = self._db.table(query.table)
        result = self._db.executor.execute(query, table, probe=True)
        cost = result.report.elapsed_ms
        if self._injector is not None:
            # a spiked probe caches the spiked cost — exactly what a
            # noisy measurement would do on a production system
            cost += self._injector.probe_spike_ms()
        return cost

    def query_cost_ms(self, query: Query) -> float:
        """Cost of one query under the current (possibly hypothetical)
        configuration. Measured probes run through the executor, so they
        share the database's compiled-plan cache: re-pricing a query the
        engine has planned under the same plan epoch skips compilation."""
        if self._estimator is not None:
            return self._estimator.estimate_query_ms(query)
        if self._cache_size > 0:
            key = (self._db.config_epoch, query)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits.inc()
                return cached
            self._misses.inc()
        cost = self._measured_cost(query)
        if self._cache_size > 0:
            self._cache[key] = cost
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self._evictions.inc()
        return cost

    def batch_query_costs(self, queries: Sequence[Query]) -> list[float]:
        """Costs of many queries, in order — the batched counterpart of
        :meth:`query_cost_ms`.

        The configuration epoch is read once (probe-mode executions never
        bump it) and cache lookups run in one pass with the counters
        updated in aggregate, so assessors pricing whole template sets pay
        the epoch/bookkeeping overhead once per batch instead of once per
        query. Returned costs, cache contents, and cumulative counter
        totals are identical to sequential :meth:`query_cost_ms` calls —
        a query repeated within the batch misses once and hits after.
        """
        if self._estimator is not None:
            return [
                self._estimator.estimate_query_ms(query) for query in queries
            ]
        if self._cache_size == 0:
            return [self._measured_cost(query) for query in queries]
        epoch = self._db.config_epoch
        cache = self._cache
        costs: list[float] = []
        hits = misses = evictions = 0
        for query in queries:
            key = (epoch, query)
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)
                hits += 1
                costs.append(cached)
                continue
            misses += 1
            cost = self._measured_cost(query)
            cache[key] = cost
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
                evictions += 1
            costs.append(cost)
        if hits:
            self._hits.inc(float(hits))
        if misses:
            self._misses.inc(float(misses))
        if evictions:
            self._evictions.inc(float(evictions))
        return costs

    def scenario_cost_ms(
        self, scenario: WorkloadScenario, sample_queries: dict[str, Query]
    ) -> float:
        """Frequency-weighted workload cost of one scenario.

        Templates with positive forecast frequency but no sample query
        cannot be priced; their weight is *dropped*, so the returned cost
        underestimates the true workload. The priced fraction is surfaced
        on the ``whatif_scenario_coverage`` gauge and a ``RuntimeWarning``
        is emitted whenever it falls below 1.0.
        """
        weighted: list[tuple[float, Query]] = []
        considered = 0
        for key, frequency in scenario.frequencies.items():
            if frequency <= 0:
                continue
            considered += 1
            query = sample_queries.get(key)
            if query is None:
                continue
            weighted.append((frequency, query))
        coverage = len(weighted) / considered if considered else 1.0
        self._coverage_gauge.set(coverage)
        if coverage < 1.0:
            warnings.warn(
                f"scenario {scenario.name!r}: only {len(weighted)} of "
                f"{considered} positive-frequency templates have sample "
                "queries; the scenario cost underestimates the workload",
                RuntimeWarning,
                stacklevel=2,
            )
        costs = self.batch_query_costs([query for _, query in weighted])
        total = 0.0
        for (frequency, _), cost in zip(weighted, costs):
            total += frequency * cost
        return total

    def forecast_costs(self, forecast: Forecast) -> dict[str, float]:
        """Workload cost per scenario of the forecast."""
        sample_queries = dict(forecast.sample_queries)
        return {
            scenario.name: self.scenario_cost_ms(scenario, sample_queries)
            for scenario in forecast.scenarios
        }

    def expected_forecast_cost(self, forecast: Forecast) -> float:
        """Probability-weighted cost across all scenarios."""
        costs = self.forecast_costs(forecast)
        return sum(
            scenario.probability * costs[scenario.name]
            for scenario in forecast.scenarios
        )

    # ------------------------------------------------------------------
    # hypothetical configurations

    @contextmanager
    def hypothetical(
        self, delta: ConfigurationDelta
    ) -> Iterator["WhatIfOptimizer"]:
        """Apply ``delta`` raw, yield, then roll back. Nestable.

        On exit the pre-delta configuration epoch is restored, so costs
        cached for the surrounding state stay valid and a later
        re-application of the same delta revisits the same epochs (cache
        reuse). The restore is skipped when the rollback was inexact:
        raw actions can only *remove* buffer-pool entries (invalidation,
        capacity shrink), never add them, so an unchanged (entry count,
        used bytes) pair proves the pool — and with it the whole
        pricing-relevant state — was restored bit-identically.
        """
        pool = self._db.executor.buffer_pool
        saved_epoch = self._db.config_epoch
        saved_pool = (pool.entry_count, pool.used_bytes)
        try:
            inverse = delta.apply_raw(self._db)
        except Exception:
            # delta.apply_raw undid its own partial prefix; fix the epoch
            # the same way a normal exit would
            if (pool.entry_count, pool.used_bytes) == saved_pool:
                self._db.restore_config_epoch(saved_epoch)
            else:
                self._db.bump_config_epoch()
            raise
        try:
            yield self
        finally:
            inverse.apply_raw(self._db)
            if (pool.entry_count, pool.used_bytes) == saved_pool:
                self._db.restore_config_epoch(saved_epoch)
            else:
                self._db.bump_config_epoch()

    def cost_with(
        self,
        delta: ConfigurationDelta,
        scenario: WorkloadScenario,
        sample_queries: dict[str, Query],
    ) -> float:
        """Scenario cost as if ``delta`` were applied."""
        with self.hypothetical(delta):
            return self.scenario_cost_ms(scenario, sample_queries)

    def cost_many(
        self,
        deltas: Sequence[ConfigurationDelta],
        scenario: WorkloadScenario,
        sample_queries: dict[str, Query],
    ) -> list[float]:
        """Scenario costs for many alternative deltas, in order.

        Each delta is hypothetically applied and rolled back exactly once;
        inside every application the scenario is priced through the batched
        path, so comparing N candidate configurations costs N
        apply/rollback cycles plus N batched pricings — never N×templates
        epoch reads.
        """
        return [
            self.cost_with(delta, scenario, sample_queries)
            for delta in deltas
        ]
