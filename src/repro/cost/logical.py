"""The simple logical cost model.

It knows row counts and statistics-based selectivities but is blind to
encodings, indexes, tiers, and knobs — the model class the paper argues is
"not capable of representing the interplay of, e.g., data types, encodings,
and coprocessors". It exists as the fast-and-crude assessor option and as
the baseline the calibration experiment compares learned models against.
"""

from __future__ import annotations

from repro.cost.base import CostEstimator
from repro.dbms.database import Database
from repro.workload.query import Query

#: assumed time per row visited / produced, in milliseconds
_MS_PER_ROW_SCANNED = 1.0e-6
_MS_PER_ROW_OUTPUT = 0.5e-6
_FIXED_OVERHEAD_MS = 0.002


class LogicalCostModel(CostEstimator):
    """Selectivity × row-count estimation, physical-design-agnostic."""

    name = "logical"

    def __init__(self, database: Database) -> None:
        self._db = database

    def estimate_query_ms(self, query: Query) -> float:
        table = self._db.table(query.table)
        rows = table.row_count
        # Every conjunct is assumed to scan the rows surviving its
        # predecessors (independence assumption).
        live = float(rows)
        scanned = 0.0
        for predicate in query.predicates:
            scanned += live
            stats = table.statistics(predicate.column)
            live *= stats.selectivity(predicate.op, predicate.value)
        if not query.predicates:
            scanned = float(rows)
        matched = live
        return (
            _FIXED_OVERHEAD_MS
            + scanned * _MS_PER_ROW_SCANNED
            + matched * _MS_PER_ROW_OUTPUT
        )
