"""Configuration deltas: ordered action lists between two instances.

The delta is the unit the tuning executor applies and the unit whose
one-time cost is the "reconfiguration cost" that Section II-D.b balances
against performance improvements.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.configuration.actions import (
    Action,
    CreateIndexAction,
    DropIndexAction,
    MoveChunkAction,
    SetEncodingAction,
    SetKnobAction,
    SortChunkAction,
)
from repro.configuration.config import ConfigurationInstance
from repro.dbms.database import Database


@dataclass
class ConfigurationDelta:
    """An ordered list of configuration actions."""

    actions: list[Action] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.actions

    def __len__(self) -> int:
        return len(self.actions)

    def apply(self, db: Database) -> float:
        """Accounted application; returns the total one-time cost."""
        return sum(action.apply(db) for action in self.actions)

    def apply_raw(self, db: Database) -> "ConfigurationDelta":
        """Unaccounted application; returns the inverse delta (which, when
        itself applied raw, restores the previous configuration).

        Exception-safe: if an action raises mid-delta, the actions already
        applied are undone (via their collected inverses, in reverse) before
        the exception propagates, so a failed delta never leaves the
        database half-mutated.
        """
        inverse: list[Action] = []
        try:
            for action in self.actions:
                inverse.extend(action.apply_raw(db))
        except Exception:
            for undo in reversed(inverse):
                undo.apply_raw(db)
            raise
        inverse.reverse()
        return ConfigurationDelta(inverse)

    def estimate_cost_ms(self, db: Database) -> float:
        return sum(action.estimate_cost_ms(db) for action in self.actions)

    def describe(self) -> list[str]:
        return [action.describe() for action in self.actions]

    def extend(self, other: "ConfigurationDelta") -> None:
        self.actions.extend(other.actions)


def _group_index_specs(
    specs: Sequence, action_cls: type
) -> list[Action]:
    """Group per-chunk index specs into one action per (table, columns)."""
    grouped: dict[tuple[str, tuple[str, ...]], list[int]] = {}
    for spec in specs:
        grouped.setdefault((spec.table, spec.columns), []).append(spec.chunk_id)
    return [
        action_cls(table, columns, tuple(sorted(chunk_ids)))
        for (table, columns), chunk_ids in sorted(grouped.items())
    ]


def diff_configurations(
    current: ConfigurationInstance, target: ConfigurationInstance
) -> ConfigurationDelta:
    """Actions transforming ``current`` into ``target``.

    Ordering matters for cost: drops first (free up memory), then sorting
    (so re-encodes and index builds happen on the final row order), then
    encodings (so index builds happen on the final encoding), then index
    creation, then placements, then knobs.

    A target sort order of ``None`` (ingest order) cannot be diffed to: the
    original permutation is not part of a configuration instance, so a
    sorted chunk stays sorted. What-if rollbacks restore exact order via
    the inverse-permutation tokens of ``SortChunkAction.apply_raw``.
    """
    actions: list[Action] = []

    to_drop = current.indexes - target.indexes
    to_create = target.indexes - current.indexes
    actions.extend(_group_index_specs(sorted(to_drop, key=str), DropIndexAction))

    current_sort = current.sort_order_map()
    grouped_sort: dict[tuple[str, str], list[int]] = {}
    for (table, chunk_id), column in target.sort_orders:
        if column is None:
            continue
        if current_sort.get((table, chunk_id)) != column:
            grouped_sort.setdefault((table, column), []).append(chunk_id)
    for (table, column), chunk_ids in sorted(grouped_sort.items()):
        actions.append(
            SortChunkAction(table, column, tuple(sorted(chunk_ids)))
        )

    current_enc = current.encoding_map()
    grouped_enc: dict[tuple[str, str, object], list[int]] = {}
    for (table, column, chunk_id), encoding in target.encodings:
        if current_enc.get((table, column, chunk_id)) is not encoding:
            grouped_enc.setdefault((table, column, encoding), []).append(chunk_id)
    for (table, column, encoding), chunk_ids in sorted(
        grouped_enc.items(), key=str
    ):
        actions.append(
            SetEncodingAction(table, column, encoding, tuple(sorted(chunk_ids)))
        )

    actions.extend(_group_index_specs(sorted(to_create, key=str), CreateIndexAction))

    current_place = current.placement_map()
    for (table, chunk_id), tier in target.placements:
        if current_place.get((table, chunk_id)) is not tier:
            actions.append(MoveChunkAction(table, chunk_id, tier))

    current_knobs = current.knob_map()
    for name, value in target.knobs:
        if current_knobs.get(name) != value:
            actions.append(SetKnobAction(name, value))

    return ConfigurationDelta(actions)
