"""Configuration instances: complete snapshots of all configurable entities.

"The configuration of a DBMS is the combination of all of its configurable
entities … A particular configuration is called configuration instance"
(Section II-A.b). An instance records, at chunk granularity, which indexes
exist, which encoding each column segment uses, where each chunk resides,
and every knob value. Instances can be captured from a live database and
diffed into a :class:`~repro.configuration.delta.ConfigurationDelta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbms.database import Database
from repro.dbms.segments import EncodingType
from repro.dbms.storage_tiers import StorageTier


@dataclass(frozen=True)
class ChunkIndexSpec:
    """One index on one chunk."""

    table: str
    columns: tuple[str, ...]
    chunk_id: int


@dataclass(frozen=True)
class ConfigurationInstance:
    """An immutable snapshot of the full configuration."""

    indexes: frozenset[ChunkIndexSpec]
    #: (table, column, chunk_id) → encoding
    encodings: tuple[tuple[tuple[str, str, int], EncodingType], ...]
    #: (table, chunk_id) → tier
    placements: tuple[tuple[tuple[str, int], StorageTier], ...]
    knobs: tuple[tuple[str, float], ...]
    #: (table, chunk_id) → explicit sort column (None = ingest order)
    sort_orders: tuple[tuple[tuple[str, int], str | None], ...] = ()
    captured_at_ms: float = field(default=0.0, compare=False)

    @classmethod
    def capture(cls, db: Database) -> "ConfigurationInstance":
        indexes: set[ChunkIndexSpec] = set()
        encodings: dict[tuple[str, str, int], EncodingType] = {}
        placements: dict[tuple[str, int], StorageTier] = {}
        sort_orders: dict[tuple[str, int], str | None] = {}
        for table in db.catalog.tables():
            for chunk in table.chunks():
                for key in chunk.index_keys():
                    indexes.add(ChunkIndexSpec(table.name, key, chunk.chunk_id))
                for column in table.schema.column_names:
                    encodings[(table.name, column, chunk.chunk_id)] = (
                        chunk.encoding_of(column)
                    )
                placements[(table.name, chunk.chunk_id)] = chunk.tier
                sort_orders[(table.name, chunk.chunk_id)] = chunk.sort_column
        return cls(
            indexes=frozenset(indexes),
            encodings=tuple(sorted(encodings.items())),
            placements=tuple(sorted(placements.items())),
            knobs=tuple(sorted(db.knobs.snapshot().items())),
            sort_orders=tuple(sorted(sort_orders.items())),
            captured_at_ms=db.clock.now_ms,
        )

    # ------------------------------------------------------------------
    # convenience views

    def encoding_map(self) -> dict[tuple[str, str, int], EncodingType]:
        return dict(self.encodings)

    def placement_map(self) -> dict[tuple[str, int], StorageTier]:
        return dict(self.placements)

    def knob_map(self) -> dict[str, float]:
        return dict(self.knobs)

    def sort_order_map(self) -> dict[tuple[str, int], str | None]:
        return dict(self.sort_orders)

    def index_count(self) -> int:
        return len(self.indexes)

    def summary(self) -> dict[str, int]:
        """Coarse shape of the instance, for logs and the config store."""
        return {
            "chunk_indexes": len(self.indexes),
            "encoded_segments": sum(
                1
                for _key, enc in self.encodings
                if enc is not EncodingType.UNENCODED
            ),
            "non_dram_chunks": sum(
                1
                for _key, tier in self.placements
                if tier is not StorageTier.DRAM
            ),
            "sorted_chunks": sum(
                1 for _key, column in self.sort_orders if column is not None
            ),
            "knobs": len(self.knobs),
        }
