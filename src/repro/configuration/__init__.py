"""Configuration instances, deltas, constraints, and the instance store."""

from repro.configuration.actions import (
    Action,
    CreateIndexAction,
    DropIndexAction,
    MoveChunkAction,
    PermuteChunkAction,
    SetEncodingAction,
    SetKnobAction,
    SortChunkAction,
)
from repro.configuration.config import ChunkIndexSpec, ConfigurationInstance
from repro.configuration.constraints import (
    BUFFER_POOL,
    DRAM_BYTES,
    INDEX_MEMORY,
    TOTAL_MEMORY,
    ConstraintScope,
    ConstraintSet,
    ResourceBudget,
    SlaConstraint,
)
from repro.configuration.delta import ConfigurationDelta, diff_configurations
from repro.configuration.store import (
    ConfigurationInstanceStorage,
    ConfigurationRecord,
)

__all__ = [
    "Action",
    "BUFFER_POOL",
    "ChunkIndexSpec",
    "ConfigurationDelta",
    "ConfigurationInstance",
    "ConfigurationInstanceStorage",
    "ConfigurationRecord",
    "ConstraintScope",
    "ConstraintSet",
    "CreateIndexAction",
    "DRAM_BYTES",
    "DropIndexAction",
    "INDEX_MEMORY",
    "MoveChunkAction",
    "ResourceBudget",
    "PermuteChunkAction",
    "SetEncodingAction",
    "SetKnobAction",
    "SortChunkAction",
    "SlaConstraint",
    "TOTAL_MEMORY",
    "diff_configurations",
]
