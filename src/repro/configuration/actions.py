"""Configuration actions: the atomic steps that change a database's
configuration instance.

Every action supports three modes:

- :meth:`Action.apply` — accounted application through the
  :class:`~repro.dbms.database.Database` facade (advances the simulated
  clock, counts as a reconfiguration, returns the one-time cost);
- :meth:`Action.apply_raw` — *unaccounted* application used by the what-if
  optimizer: mutates the physical structures directly and returns the
  inverse actions needed to roll back;
- :meth:`Action.estimate_cost_ms` — predicts the one-time cost without
  applying anything (the "reconfiguration costs" of Section II-D.b).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.dbms.database import Database
from repro.dbms.knobs import BUFFER_POOL_KNOB
from repro.dbms.segments import EncodingType
from repro.dbms.storage_tiers import StorageTier, migration_cost_ms


class Action(ABC):
    """One atomic configuration change."""

    @abstractmethod
    def apply(self, db: Database) -> float:
        """Apply through the database facade; returns the one-time cost."""

    @abstractmethod
    def apply_raw(self, db: Database) -> list["Action"]:
        """Apply without accounting; returns inverse actions (newest last).

        Every raw application that actually mutates state bumps the
        database's configuration epoch with the action's description as a
        memoisation token, so the what-if cost cache keyed on the epoch is
        invalidated — and re-applying the same action sequence from the
        same epoch revisits the same epoch (cache reuse). No-op
        applications (state already as requested) do not bump.
        """

    @abstractmethod
    def estimate_cost_ms(self, db: Database) -> float:
        """Predicted one-time cost of applying this action now."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable one-line summary."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class CreateIndexAction(Action):
    table: str
    columns: tuple[str, ...]
    #: None applies to all chunks
    chunk_ids: tuple[int, ...] | None = None

    def apply(self, db: Database) -> float:
        return db.create_index(self.table, list(self.columns), self.chunk_ids)

    def apply_raw(self, db: Database) -> list[Action]:
        table = db.table(self.table)
        touched = table.create_index(list(self.columns), self.chunk_ids)
        if not touched:
            return []
        db.bump_config_epoch(self.describe())
        return [
            DropIndexAction(
                self.table,
                self.columns,
                tuple(c.chunk_id for c in touched),
            )
        ]

    def estimate_cost_ms(self, db: Database) -> float:
        table = db.table(self.table)
        chunks = (
            table.chunks()
            if self.chunk_ids is None
            else [table.chunk(cid) for cid in self.chunk_ids]
        )
        return sum(
            db.hardware.index_build_ms(c.row_count, len(self.columns), c.tier)
            for c in chunks
            if not c.has_index(self.columns)
        )

    def describe(self) -> str:
        scope = "all chunks" if self.chunk_ids is None else f"chunks {list(self.chunk_ids)}"
        return f"CREATE INDEX ON {self.table}({', '.join(self.columns)}) [{scope}]"


@dataclass(frozen=True)
class DropIndexAction(Action):
    table: str
    columns: tuple[str, ...]
    chunk_ids: tuple[int, ...] | None = None

    def apply(self, db: Database) -> float:
        return db.drop_index(self.table, list(self.columns), self.chunk_ids)

    def apply_raw(self, db: Database) -> list[Action]:
        table = db.table(self.table)
        touched = table.drop_index(list(self.columns), self.chunk_ids)
        if not touched:
            return []
        db.bump_config_epoch(self.describe())
        return [
            CreateIndexAction(
                self.table,
                self.columns,
                tuple(c.chunk_id for c in touched),
            )
        ]

    def estimate_cost_ms(self, db: Database) -> float:
        del db
        return 0.02 * (len(self.chunk_ids) if self.chunk_ids else 1)

    def describe(self) -> str:
        scope = "all chunks" if self.chunk_ids is None else f"chunks {list(self.chunk_ids)}"
        return f"DROP INDEX ON {self.table}({', '.join(self.columns)}) [{scope}]"


@dataclass(frozen=True)
class SetEncodingAction(Action):
    table: str
    column: str
    encoding: EncodingType
    chunk_ids: tuple[int, ...] | None = None

    def apply(self, db: Database) -> float:
        return db.set_encoding(
            self.table, self.column, self.encoding, self.chunk_ids
        )

    def apply_raw(self, db: Database) -> list[Action]:
        table = db.table(self.table)
        chunks = (
            table.chunks()
            if self.chunk_ids is None
            else [table.chunk(cid) for cid in self.chunk_ids]
        )
        reverted: dict[EncodingType, list[int]] = {}
        for chunk in chunks:
            old = chunk.encoding_of(self.column)
            if old is self.encoding:
                continue
            chunk.set_encoding(self.column, self.encoding)
            db.executor.buffer_pool.invalidate((self.table, chunk.chunk_id))
            reverted.setdefault(old, []).append(chunk.chunk_id)
        if reverted:
            db.bump_config_epoch(self.describe())
        return [
            SetEncodingAction(self.table, self.column, old, tuple(ids))
            for old, ids in reverted.items()
        ]

    def estimate_cost_ms(self, db: Database) -> float:
        table = db.table(self.table)
        chunks = (
            table.chunks()
            if self.chunk_ids is None
            else [table.chunk(cid) for cid in self.chunk_ids]
        )
        cost = 0.0
        for chunk in chunks:
            if chunk.encoding_of(self.column) is self.encoding:
                continue
            cost += db.hardware.encode_ms(chunk.row_count, self.encoding, chunk.tier)
            for key in chunk.index_keys():
                if self.column in key:
                    cost += db.hardware.index_build_ms(
                        chunk.row_count, len(key), chunk.tier
                    )
        return cost

    def describe(self) -> str:
        scope = "all chunks" if self.chunk_ids is None else f"chunks {list(self.chunk_ids)}"
        return (
            f"SET ENCODING {self.table}.{self.column} = "
            f"{self.encoding.value} [{scope}]"
        )


@dataclass(frozen=True)
class MoveChunkAction(Action):
    table: str
    chunk_id: int
    tier: StorageTier

    def apply(self, db: Database) -> float:
        return db.move_chunk(self.table, self.chunk_id, self.tier)

    def apply_raw(self, db: Database) -> list[Action]:
        chunk = db.table(self.table).chunk(self.chunk_id)
        old = chunk.tier
        if old is self.tier:
            return []
        chunk.tier = self.tier
        db.executor.buffer_pool.invalidate((self.table, self.chunk_id))
        db.bump_config_epoch(self.describe())
        return [MoveChunkAction(self.table, self.chunk_id, old)]

    def estimate_cost_ms(self, db: Database) -> float:
        chunk = db.table(self.table).chunk(self.chunk_id)
        return migration_cost_ms(chunk.memory_bytes(), chunk.tier, self.tier)

    def describe(self) -> str:
        return (
            f"MOVE CHUNK {self.table}[{self.chunk_id}] -> {self.tier.value}"
        )


@dataclass(frozen=True)
class SortChunkAction(Action):
    """Physically sort chunks by one column (intra-chunk row reordering)."""

    table: str
    column: str
    chunk_ids: tuple[int, ...] | None = None

    def _chunks(self, db: Database):
        table = db.table(self.table)
        if self.chunk_ids is None:
            return list(table.chunks())
        return [table.chunk(cid) for cid in self.chunk_ids]

    def apply(self, db: Database) -> float:
        cost = 0.0
        for chunk in self._chunks(db):
            cost += db.sort_chunk(self.table, chunk.chunk_id, self.column)
        return cost

    def apply_raw(self, db: Database) -> list[Action]:
        inverse: list[Action] = []
        for chunk in self._chunks(db):
            if chunk.sort_column == self.column:
                continue
            previous_sort = chunk.sort_column
            permutation, _rebuilt = chunk.sort_by(self.column)
            db.executor.buffer_pool.invalidate((self.table, chunk.chunk_id))
            inverse.append(
                PermuteChunkAction(
                    self.table, chunk.chunk_id, permutation, previous_sort
                )
            )
        if inverse:
            db.bump_config_epoch(self.describe())
        return inverse

    def estimate_cost_ms(self, db: Database) -> float:
        table = db.table(self.table)
        cost = 0.0
        for chunk in self._chunks(db):
            if chunk.sort_column == self.column:
                continue
            cost += db.hardware.sort_rows_ms(
                chunk.row_count, len(table.schema.columns), chunk.tier
            )
            for key in chunk.index_keys():
                cost += db.hardware.index_build_ms(
                    chunk.row_count, len(key), chunk.tier
                )
        return cost

    def describe(self) -> str:
        scope = "all chunks" if self.chunk_ids is None else f"chunks {list(self.chunk_ids)}"
        return f"SORT {self.table} BY {self.column} [{scope}]"


@dataclass(eq=False)
class PermuteChunkAction(Action):
    """Restore a specific row order (the inverse of a raw sort).

    Only produced as the rollback token of :meth:`SortChunkAction.apply_raw`
    — it carries the concrete permutation, so it is process-local and not
    part of any configuration instance.
    """

    table: str
    chunk_id: int
    permutation: object  # numpy array; eq=False keeps dataclass semantics sane
    sort_column: str | None

    def apply(self, db: Database) -> float:
        self.apply_raw(db)
        return db._record_reconfiguration(0.0)

    def apply_raw(self, db: Database) -> list[Action]:
        chunk = db.table(self.table).chunk(self.chunk_id)
        chunk.apply_permutation(self.permutation, self.sort_column)
        db.executor.buffer_pool.invalidate((self.table, self.chunk_id))
        # the permutation is derived from the state it undoes, so the
        # describe() token is deterministic per starting epoch
        db.bump_config_epoch(f"{self.describe()} -> {self.sort_column}")
        return []  # rollback tokens are one-shot

    def estimate_cost_ms(self, db: Database) -> float:
        del db
        return 0.0

    def describe(self) -> str:
        return f"RESTORE ORDER {self.table}[{self.chunk_id}]"


@dataclass(frozen=True)
class SetKnobAction(Action):
    name: str
    value: float

    def apply(self, db: Database) -> float:
        return db.set_knob(self.name, self.value)

    def apply_raw(self, db: Database) -> list[Action]:
        old = db.knobs.get(self.name)
        if old == self.value:
            return []
        db.knobs.set(self.name, self.value)
        if self.name == BUFFER_POOL_KNOB:
            db.executor.sync_buffer_pool()
        db.bump_config_epoch(self.describe())
        return [SetKnobAction(self.name, old)]

    def estimate_cost_ms(self, db: Database) -> float:
        del db
        return 0.05

    def describe(self) -> str:
        return f"SET KNOB {self.name} = {self.value}"
