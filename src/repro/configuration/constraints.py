"""Constraints: DBMS-specified budgets/SLAs and hardware resource limits.

Section II-A.c distinguishes two constraint scopes — DBMS-related (SLAs,
index memory budgets, limits set by cloud management software) and hardware
resources — and resolves conflicts in favour of the hardware: "available
hardware resources overwrite externally specified ones."
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.dbms.hardware import HardwareProfile
from repro.dbms.storage_tiers import StorageTier
from repro.errors import ConstraintError

#: Resource names used across tuners and selectors.
INDEX_MEMORY = "index_memory_bytes"
DRAM_BYTES = "dram_bytes"
TOTAL_MEMORY = "total_memory_bytes"
BUFFER_POOL = "buffer_pool_bytes"


class ConstraintScope(enum.Enum):
    DBMS = "dbms"
    HARDWARE = "hardware"


@dataclass(frozen=True)
class ResourceBudget:
    """An upper limit on one resource, set by one scope."""

    resource: str
    limit: float
    scope: ConstraintScope = ConstraintScope.DBMS

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ConstraintError(
                f"budget for {self.resource!r} must be non-negative"
            )


@dataclass(frozen=True)
class SlaConstraint:
    """A service-level agreement on a runtime KPI (upper bound)."""

    metric: str
    threshold: float
    #: consecutive violating samples before the SLA counts as breached
    patience: int = 1

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ConstraintError("patience must be at least 1")


class ConstraintSet:
    """Merged budgets and SLAs with hardware-over-DBMS conflict resolution."""

    def __init__(
        self,
        budgets: Iterable[ResourceBudget] = (),
        slas: Iterable[SlaConstraint] = (),
    ) -> None:
        self._dbms: dict[str, float] = {}
        self._hardware: dict[str, float] = {}
        self._slas: list[SlaConstraint] = list(slas)
        for budget in budgets:
            self.add_budget(budget)

    def add_budget(self, budget: ResourceBudget) -> None:
        store = (
            self._hardware
            if budget.scope is ConstraintScope.HARDWARE
            else self._dbms
        )
        store[budget.resource] = budget.limit

    def add_sla(self, sla: SlaConstraint) -> None:
        self._slas.append(sla)

    @property
    def slas(self) -> tuple[SlaConstraint, ...]:
        return tuple(self._slas)

    def effective_budget(self, resource: str) -> float | None:
        """The binding limit: the hardware value when both scopes specify
        the resource, per the paper's conflict rule."""
        if resource in self._hardware:
            return self._hardware[resource]
        return self._dbms.get(resource)

    def effective_budgets(self) -> dict[str, float]:
        merged = dict(self._dbms)
        merged.update(self._hardware)
        return merged

    def check_usage(self, usage: Mapping[str, float]) -> list[str]:
        """Budget violations of ``usage``, as human-readable strings."""
        violations = []
        for resource, amount in usage.items():
            limit = self.effective_budget(resource)
            if limit is not None and amount > limit:
                violations.append(
                    f"{resource}: {amount:.0f} exceeds budget {limit:.0f}"
                )
        return violations

    def with_hardware(self, hardware: HardwareProfile) -> "ConstraintSet":
        """A copy with the hardware profile's physical limits added."""
        merged = ConstraintSet(slas=self._slas)
        merged._dbms = dict(self._dbms)
        merged._hardware = dict(self._hardware)
        merged._hardware.setdefault(
            DRAM_BYTES, float(hardware.tier_capacity_bytes(StorageTier.DRAM))
        )
        merged._hardware.setdefault(
            TOTAL_MEMORY,
            float(
                sum(hardware.tier_capacity_bytes(t) for t in StorageTier)
            ),
        )
        return merged
