"""Configuration instance storage: the feedback loop's memory.

"When the configuration is adjusted, former configuration instances are
stored. This storing is central to establish a feedback loop for past
decisions by enabling the assessment of the impact of past tuning
decisions" (Section II-A.b). Each record pairs the instance with what the
tuner *predicted* the change would be worth; measurements filled in later
let learned assessors calibrate their confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configuration.config import ConfigurationInstance
from repro.errors import ConfigurationError


@dataclass
class ConfigurationRecord:
    """One stored configuration change and its predicted/measured impact."""

    instance: ConfigurationInstance
    applied_at_ms: float
    trigger: str
    feature: str | None = None
    action_summaries: list[str] = field(default_factory=list)
    predicted_benefit_ms: float | None = None
    reconfiguration_cost_ms: float | None = None
    #: filled in later, once the effect has been observed
    measured_benefit_ms: float | None = None

    @property
    def prediction_error(self) -> float | None:
        """Relative error of the predicted benefit, if measured."""
        if self.predicted_benefit_ms is None or self.measured_benefit_ms is None:
            return None
        scale = max(abs(self.measured_benefit_ms), 1e-9)
        return (self.predicted_benefit_ms - self.measured_benefit_ms) / scale


class ConfigurationInstanceStorage:
    """Append-only history of configuration instances."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        self._capacity = capacity
        self._records: list[ConfigurationRecord] = []

    def append(self, record: ConfigurationRecord) -> int:
        """Store a record; returns its id (stable until eviction)."""
        self._records.append(record)
        if len(self._records) > self._capacity:
            del self._records[0]
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    def latest(self) -> ConfigurationRecord | None:
        return self._records[-1] if self._records else None

    def history(self) -> tuple[ConfigurationRecord, ...]:
        return tuple(self._records)

    def record_measurement(self, record_id: int, measured_benefit_ms: float) -> None:
        try:
            record = self._records[record_id]
        except IndexError:
            raise ConfigurationError(f"no record with id {record_id}") from None
        record.measured_benefit_ms = measured_benefit_ms

    def feedback(
        self, feature: str | None = None
    ) -> list[tuple[float, float]]:
        """(predicted, measured) benefit pairs available for learning."""
        pairs = []
        for record in self._records:
            if feature is not None and record.feature != feature:
                continue
            if (
                record.predicted_benefit_ms is not None
                and record.measured_benefit_ms is not None
            ):
                pairs.append(
                    (record.predicted_benefit_ms, record.measured_benefit_ms)
                )
        return pairs
