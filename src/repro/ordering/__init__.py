"""Section III: dependence measurement and LP-based tuning-order optimization."""

from repro.ordering.branch_bound import BranchAndBoundOrderOptimizer
from repro.ordering.brute_force import BruteForceOrderOptimizer
from repro.ordering.dependence import (
    DependenceAnalyzer,
    DependenceMatrix,
    ordering_objective,
)
from repro.ordering.heuristics import (
    impact_order,
    impact_per_cost_ranking,
    pairwise_heuristic_order,
    random_order,
    top_features_by_impact_per_cost,
)
from repro.ordering.lp import LPOrderOptimizer, OrderingSolution, model_statistics
from repro.ordering.recursive import (
    FeatureRunRecord,
    RecursiveTuningPlanner,
    RecursiveTuningReport,
)

__all__ = [
    "BranchAndBoundOrderOptimizer",
    "BruteForceOrderOptimizer",
    "DependenceAnalyzer",
    "DependenceMatrix",
    "FeatureRunRecord",
    "LPOrderOptimizer",
    "OrderingSolution",
    "RecursiveTuningPlanner",
    "RecursiveTuningReport",
    "impact_order",
    "impact_per_cost_ranking",
    "model_statistics",
    "ordering_objective",
    "pairwise_heuristic_order",
    "random_order",
    "top_features_by_impact_per_cost",
]
