"""Recursive tuning of multiple features in an optimized order.

"We propose a mechanism to recursively tune all features in a reasonable
order while taking their dependencies into account" (Section III-A).
The planner measures the dependence matrix, solves the ordering LP, and
then tunes the features one by one — each tuning run proposing against the
database state its predecessors left behind, which is what makes the order
matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configuration.constraints import ConstraintSet
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.errors import OrderingError, TuningAbortedError
from repro.forecasting.scenarios import Forecast
from repro.ordering.dependence import DependenceAnalyzer, DependenceMatrix
from repro.ordering.lp import LPOrderOptimizer, OrderingSolution
from repro.telemetry import Telemetry, Tracer
from repro.tuning.executors.base import ApplicationReport, TuningExecutor
from repro.tuning.tuner import Tuner, TuningResult


@dataclass
class FeatureRunRecord:
    """One feature's tuning within a recursive run."""

    feature: str
    result: TuningResult
    report: ApplicationReport
    cost_before_ms: float
    cost_after_ms: float
    #: True when the application failed permanently and was rolled back
    failed: bool = False
    #: failure message of the aborting error, when failed
    failure: str | None = None


@dataclass
class RecursiveTuningReport:
    """Outcome of one full recursive tuning pass."""

    order: tuple[str, ...]
    initial_cost_ms: float
    final_cost_ms: float
    runs: list[FeatureRunRecord] = field(default_factory=list)
    matrix: DependenceMatrix | None = None
    ordering_solution: OrderingSolution | None = None

    @property
    def improvement(self) -> float:
        """Relative workload-cost improvement of the whole pass."""
        if self.initial_cost_ms <= 0:
            return 0.0
        return 1.0 - self.final_cost_ms / self.initial_cost_ms

    @property
    def total_reconfiguration_ms(self) -> float:
        return sum(run.report.total_work_ms for run in self.runs)

    @property
    def failed_features(self) -> tuple[str, ...]:
        """Features whose application was rolled back this pass."""
        return tuple(run.feature for run in self.runs if run.failed)


class RecursiveTuningPlanner:
    """Measure dependencies → optimize order → tune features recursively."""

    def __init__(
        self,
        db: Database,
        tuners: list[Tuner],
        constraints: ConstraintSet | None = None,
        order_optimizer: LPOrderOptimizer | None = None,
        optimizer: WhatIfOptimizer | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not tuners:
            raise OrderingError("at least one tuner is required")
        self._db = db
        self._tuners = {t.feature_name: t for t in tuners}
        self._constraints = constraints or ConstraintSet()
        self._order_optimizer = order_optimizer or LPOrderOptimizer()
        self._optimizer = optimizer or WhatIfOptimizer(db)
        self._tracer: Tracer = (
            telemetry.tracer if telemetry is not None else Tracer(enabled=False)
        )

    @property
    def feature_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tuners))

    @property
    def tuners(self) -> dict[str, Tuner]:
        """Feature name → tuner (a copy; the policy engine reads this)."""
        return dict(self._tuners)

    def measure_dependencies(self, forecast: Forecast) -> DependenceMatrix:
        analyzer = DependenceAnalyzer(
            self._db,
            list(self._tuners.values()),
            self._constraints,
            self._optimizer,
        )
        return analyzer.measure(forecast)

    def plan_order(
        self, forecast: Forecast
    ) -> tuple[DependenceMatrix, OrderingSolution]:
        matrix = self.measure_dependencies(forecast)
        solution = self._order_optimizer.optimize(matrix)
        return matrix, solution

    def run(
        self,
        forecast: Forecast,
        order: tuple[str, ...] | None = None,
        executor: TuningExecutor | None = None,
        proposals: dict[str, TuningResult] | None = None,
    ) -> RecursiveTuningReport:
        """Tune all features in ``order`` (or the LP-optimized order).

        ``proposals`` supplies pre-computed tuning results by feature
        (an evaluated policy plan): a feature with a supplied proposal
        applies it verbatim instead of re-running enumerate/assess/
        select, which is what makes an evaluated plan execute exactly
        as priced.
        """
        matrix: DependenceMatrix | None = None
        solution: OrderingSolution | None = None
        if order is None:
            if len(self._tuners) >= 2:
                matrix, solution = self.plan_order(forecast)
                order = solution.order
            else:
                order = self.feature_names
        unknown = set(order) - set(self._tuners)
        if unknown:
            raise OrderingError(f"unknown features in order: {sorted(unknown)}")

        sample_queries = dict(forecast.sample_queries)
        initial = self._optimizer.scenario_cost_ms(
            forecast.expected, sample_queries
        )
        runs: list[FeatureRunRecord] = []
        current = initial
        for name in order:
            tuner = self._tuners[name]
            failed = False
            failure: str | None = None
            supplied = proposals.get(name) if proposals else None
            try:
                with self._tracer.span("feature", name=name) as span:
                    result, report = tuner.tune(
                        forecast, self._constraints, executor,
                        result=supplied,
                    )
                    after = self._optimizer.scenario_cost_ms(
                        forecast.expected, sample_queries
                    )
                    span.tag(
                        candidates=result.candidate_count,
                        chosen=len(result.chosen),
                        cost_before_ms=round(current, 3),
                        cost_after_ms=round(after, 3),
                    )
            except TuningAbortedError as exc:
                # the executor rolled the pass back; record the aborted
                # run and continue with the remaining features
                failed = True
                failure = str(exc)
                result = exc.result  # type: ignore[assignment]
                report = exc.report  # type: ignore[assignment]
                after = self._optimizer.scenario_cost_ms(
                    forecast.expected, sample_queries
                )
            runs.append(
                FeatureRunRecord(
                    feature=name,
                    result=result,
                    report=report,
                    cost_before_ms=current,
                    cost_after_ms=after,
                    failed=failed,
                    failure=failure,
                )
            )
            current = after
        return RecursiveTuningReport(
            order=tuple(order),
            initial_cost_ms=initial,
            final_cost_ms=current,
            runs=runs,
            matrix=matrix,
            ordering_solution=solution,
        )
