"""Baseline ordering heuristics the LP order is benchmarked against.

- random / reversed orders (the naive baselines);
- impact ordering by W_∅ / W_A (tune the biggest lever first);
- impact-per-cost ranking (Section III-A: "a heuristic-based ranking of
  impact per cost which can be utilized when resources do not suffice for
  tuning all features");
- a Zilio-style pairwise heuristic: rank each feature by the summed
  objective coefficients of putting it before everyone else (a local view
  of pairwise dependence, without the LP's global consistency).
"""

from __future__ import annotations

from repro.ordering.dependence import DependenceMatrix
from repro.util.rng import derive_rng


def random_order(matrix: DependenceMatrix, seed: int = 0) -> tuple[str, ...]:
    rng = derive_rng(seed, "random-order")
    names = list(matrix.features)
    rng.shuffle(names)
    return tuple(names)


def impact_order(matrix: DependenceMatrix) -> tuple[str, ...]:
    """Features sorted by single-feature impact W_∅ / W_A, best first."""
    return tuple(
        sorted(matrix.features, key=matrix.impact, reverse=True)
    )


def impact_per_cost_ranking(
    matrix: DependenceMatrix,
) -> list[tuple[str, float]]:
    """(feature, impact-per-cost) pairs, best first.

    Used to pick the subset of features worth tuning when resources do not
    suffice for all of them.
    """
    ranking = []
    for name in matrix.features:
        cost = max(matrix.tuning_cost_ms.get(name, 0.0), 1e-9)
        ranking.append((name, matrix.impact(name) / cost))
    ranking.sort(key=lambda pair: pair[1], reverse=True)
    return ranking


def top_features_by_impact_per_cost(
    matrix: DependenceMatrix, budget_ms: float
) -> list[str]:
    """Greedy subset of features whose tuning costs fit ``budget_ms``."""
    chosen = []
    remaining = budget_ms
    for name, _score in impact_per_cost_ranking(matrix):
        cost = matrix.tuning_cost_ms.get(name, 0.0)
        if cost <= remaining:
            chosen.append(name)
            remaining -= cost
    return chosen


def pairwise_heuristic_order(matrix: DependenceMatrix) -> tuple[str, ...]:
    """Rank by summed before-everyone coefficients (local pairwise view)."""
    def score(a: str) -> float:
        return sum(
            matrix.objective_coefficient(a, b)
            for b in matrix.features
            if b != a
        )

    return tuple(sorted(matrix.features, key=score, reverse=True))
