"""Dependence measurement between tuning features (Section III-A).

The quantities the paper defines:

- ``W_∅`` — cost of the expected workload *without any optimization*;
- ``W_A`` — cost after a tuning run for single feature A;
- ``W_{A,B}`` — cost after tuning A first, then B (B's tuning sees the
  state A left behind — that is where dependence comes from);
- ``d_{A,B} = W_{B,A} / W_{A,B}`` — the dependence ratio: values > 1 mean
  "tune A before B", ≈ 1 means the order barely matters;
- impact ratios ``W_∅ / W_A`` and tuning costs for the impact-per-cost
  ranking used when resources do not suffice to tune everything.

All measurement happens in a what-if sandbox on top of the all-features
reset baseline, so "without any optimization" is taken literally and the
database is bit-identical afterwards. The dependencies are *determined
automatically* — no manual specification as in Zilio et al. [23].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.configuration.constraints import ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.errors import OrderingError
from repro.forecasting.scenarios import Forecast
from repro.tuning.tuner import Tuner

#: Stand-in ratio when one ordering drives the pair cost to zero: the
#: true ratio would be infinite (or 1/∞), so a large finite value keeps
#: the LP bounded while preserving reciprocity d(a,b) · d(b,a) = 1.
MAX_DEPENDENCE_RATIO = 1e6


@dataclass(frozen=True)
class DependenceMatrix:
    """Measured workload costs for single and pairwise feature tunings."""

    features: tuple[str, ...]
    w_empty: float
    #: feature → W_A
    w_single: dict[str, float] = field(default_factory=dict)
    #: (A, B) → W_{A,B}, cost after tuning A then B
    w_pair: dict[tuple[str, str], float] = field(default_factory=dict)
    #: feature → one-time cost of its single tuning run
    tuning_cost_ms: dict[str, float] = field(default_factory=dict)

    def d(self, a: str, b: str) -> float:
        """Dependence ratio d_{A,B} = W_{B,A} / W_{A,B} (>1 ⇒ A first).

        Degenerate pair costs keep the ratio consistent and reciprocal
        (d(a,b) · d(b,a) = 1 always): when both orderings drive the cost
        to zero, the order is indifferent (1); when only ``A, B`` does,
        tuning A first is maximally preferable
        (:data:`MAX_DEPENDENCE_RATIO`); when only ``B, A`` does, the
        reverse (its reciprocal).
        """
        w_ab = self.w_pair[(a, b)]
        w_ba = self.w_pair[(b, a)]
        if w_ab <= 0 and w_ba <= 0:
            return 1.0
        if w_ab <= 0:
            return MAX_DEPENDENCE_RATIO
        if w_ba <= 0:
            return 1.0 / MAX_DEPENDENCE_RATIO
        return w_ba / w_ab

    def impact(self, a: str) -> float:
        """Impact ratio W_∅ / W_A of tuning feature A alone; 1 when the
        workload cost vanishes (nothing to improve)."""
        if self.w_single[a] <= 0:
            return 1.0
        return self.w_empty / self.w_single[a]

    def objective_coefficient(self, a: str, b: str) -> float:
        """The LP objective weight of y_{A,B}: d_{A,B} · W_∅ / W_{A,B}.

        Aligned with :meth:`d` in the degenerate cases: zero when both
        pair costs vanish (no gain to order for), and the capped ratio
        itself when only ``W_{A,B}`` does (the ``W_∅ / W_{A,B}`` factor
        would diverge the same way, so the cap absorbs it).
        """
        w_ab = self.w_pair[(a, b)]
        w_ba = self.w_pair[(b, a)]
        if w_ab <= 0 and w_ba <= 0:
            return 0.0
        if w_ab <= 0:
            return MAX_DEPENDENCE_RATIO
        return self.d(a, b) * self.w_empty / w_ab

    def ordered_pairs(self) -> list[tuple[str, str]]:
        return [
            (a, b)
            for a in self.features
            for b in self.features
            if a != b
        ]


def ordering_objective(matrix: DependenceMatrix, order: tuple[str, ...]) -> float:
    """Section III-B objective value of a concrete permutation: the sum of
    coefficients of all pairs (A, B) where A precedes B in ``order``."""
    if sorted(order) != sorted(matrix.features):
        raise OrderingError(
            f"order {order} is not a permutation of {matrix.features}"
        )
    position = {name: i for i, name in enumerate(order)}
    return sum(
        matrix.objective_coefficient(a, b)
        for a, b in matrix.ordered_pairs()
        if position[a] < position[b]
    )


class DependenceAnalyzer:
    """Measures W_∅, W_A, W_{A,B} via sandboxed tuning runs."""

    def __init__(
        self,
        db: Database,
        tuners: list[Tuner],
        constraints: ConstraintSet | None = None,
        optimizer: WhatIfOptimizer | None = None,
        max_templates: int | None = None,
    ) -> None:
        """``max_templates`` caps the workload the |S|² measurement runs
        see — the paper's workload-reduction lever for keeping dependence
        measurement affordable on large workloads (Section III-A)."""
        if len(tuners) < 2:
            raise OrderingError("dependence needs at least two features")
        names = [t.feature_name for t in tuners]
        if len(set(names)) != len(names):
            raise OrderingError(f"duplicate feature names: {names}")
        self._db = db
        self._tuners = {t.feature_name: t for t in tuners}
        self._constraints = constraints or ConstraintSet()
        self._optimizer = optimizer or WhatIfOptimizer(db)
        self._max_templates = max_templates

    def _full_reset(self, forecast: Forecast) -> ConfigurationDelta:
        reset = ConfigurationDelta([])
        for tuner in self._tuners.values():
            reset.extend(tuner.feature.reset_delta(self._db, forecast))
        return reset

    def _expected_cost(self, forecast: Forecast) -> float:
        return self._optimizer.scenario_cost_ms(
            forecast.expected, dict(forecast.sample_queries)
        )

    def _propose(self, name: str, forecast: Forecast):
        """Propose one feature's tuning against the current (sandboxed)
        state; returns the tuning result (nothing is applied)."""
        return self._tuners[name].propose(forecast, self._constraints)

    def measure(self, forecast: Forecast) -> DependenceMatrix:
        """Run the full single + pairwise measurement campaign.

        All sandboxing goes through ``optimizer.hypothetical`` so every
        rollback restores the configuration epoch it started from: the
        |S|² tuning runs all propose against the *same* reset-baseline
        epoch, and identical deltas re-applied from it revisit the same
        epochs — which is what turns the campaign's repeated what-if
        pricing into cache hits.
        """
        if self._max_templates is not None:
            from repro.forecasting.scenarios import reduce_templates

            forecast = reduce_templates(forecast, self._max_templates)
        names = tuple(sorted(self._tuners))
        w_single: dict[str, float] = {}
        w_pair: dict[tuple[str, str], float] = {}
        tuning_cost: dict[str, float] = {}

        reset = self._full_reset(forecast)
        with self._optimizer.hypothetical(reset):
            w_empty = self._expected_cost(forecast)
            for name in names:
                result = self._propose(name, forecast)
                tuning_cost[name] = result.reconfiguration_cost_ms
                with self._optimizer.hypothetical(result.delta):
                    w_single[name] = self._expected_cost(forecast)
            for a, b in itertools.permutations(names, 2):
                result_a = self._propose(a, forecast)
                with self._optimizer.hypothetical(result_a.delta):
                    result_b = self._propose(b, forecast)
                    with self._optimizer.hypothetical(result_b.delta):
                        w_pair[(a, b)] = self._expected_cost(forecast)

        return DependenceMatrix(
            features=names,
            w_empty=w_empty,
            w_single=w_single,
            w_pair=w_pair,
            tuning_cost_ms=tuning_cost,
        )
