"""The integer LP of Section III-B, exactly as formulated in the paper.

Binary variables:

- ``x_{A,k}`` — feature A is tuned in step k (k = 1..|S|);
- ``y_{A,B}`` — feature A is tuned before feature B.

Objective::

    maximize  Σ_{A,B∈S, A≠B}  y_{A,B} · d_{A,B} · W_∅ / W_{A,B}

Constraints::

    Σ_k x_{A,k} = 1                         ∀ A          (one step each)
    Σ_A x_{A,k} = 1                         ∀ k          (one feature each)
    y_{A,B} + y_{B,A} = 1                   ∀ A ≠ B      (total order)
    |S|·y_{A,B} ≥ Σ_k k·x_{B,k} − Σ_k k·x_{A,k}   ∀ A ≠ B (coupling)

Model size, as stated in the paper: ``2·|S|² − |S|`` variables and
``2·|S|²`` constraints (the per-ordered-pair count; the solver receives the
deduplicated equivalent). Solved by HiGHS through
:func:`scipy.optimize.milp`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import LinearConstraint, milp

from repro.errors import OrderingError
from repro.ordering.dependence import DependenceMatrix, ordering_objective


def model_statistics(n_features: int) -> tuple[int, int]:
    """(variables, constraints) as counted in the paper."""
    n = n_features
    return 2 * n * n - n, 2 * n * n


#: scipy.optimize.milp status codes → human-readable solver outcome
_MILP_STATUS = {
    0: "optimal",
    1: "time_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical",
}


@dataclass(frozen=True)
class OrderingSolution:
    """An optimized tuning order plus solve diagnostics."""

    order: tuple[str, ...]
    objective: float
    n_variables: int
    n_constraints: int
    solver: str
    solve_seconds: float
    #: the y_{A,B} values at the optimum
    precedence: dict[tuple[str, str], int]
    #: solver outcome: "optimal", or "time_limit" for a feasible incumbent
    status: str = "optimal"


class LPOrderOptimizer:
    """Solves the paper's integer LP with an off-the-shelf MILP solver.

    ``tighten=True`` (default) adds the standard linear-ordering
    transitivity cuts ``y_AB + y_BC + y_CA ≤ 2`` on top of the paper's
    formulation. They do not change the feasible integer set (the x/y
    coupling already forces a total order) but strengthen the relaxation
    enough that instances beyond |S| ≈ 9 solve in seconds instead of
    minutes — the "large problem instances" of Section V. The reported
    model statistics always describe the paper's base formulation.
    """

    name = "lp"

    def __init__(
        self, time_limit_s: float | None = None, tighten: bool = True
    ) -> None:
        self._time_limit_s = time_limit_s
        self._tighten = tighten

    def optimize(self, matrix: DependenceMatrix) -> OrderingSolution:
        features = matrix.features
        n = len(features)
        if n < 2:
            raise OrderingError("ordering needs at least two features")
        index_of = {name: i for i, name in enumerate(features)}
        pairs = [(a, b) for a in features for b in features if a != b]

        # variable layout: x_{A,k} at A*n + k, then y_{A,B} appended
        n_x = n * n
        y_offset = {pair: n_x + i for i, pair in enumerate(pairs)}
        n_vars = n_x + len(pairs)

        objective = np.zeros(n_vars)
        for a, b in pairs:
            objective[y_offset[(a, b)]] = -matrix.objective_coefficient(a, b)

        constraints: list[LinearConstraint] = []

        # each feature gets exactly one step
        for a in features:
            row = np.zeros(n_vars)
            for k in range(n):
                row[index_of[a] * n + k] = 1.0
            constraints.append(LinearConstraint(row, 1.0, 1.0))

        # each step gets exactly one feature
        for k in range(n):
            row = np.zeros(n_vars)
            for a in features:
                row[index_of[a] * n + k] = 1.0
            constraints.append(LinearConstraint(row, 1.0, 1.0))

        # y_{A,B} + y_{B,A} = 1 (one row per unordered pair; the paper
        # counts this family once per ordered pair)
        seen: set[frozenset[str]] = set()
        for a, b in pairs:
            key = frozenset((a, b))
            if key in seen:
                continue
            seen.add(key)
            row = np.zeros(n_vars)
            row[y_offset[(a, b)]] = 1.0
            row[y_offset[(b, a)]] = 1.0
            constraints.append(LinearConstraint(row, 1.0, 1.0))

        # |S|·y_{A,B} − Σ_k k·x_{B,k} + Σ_k k·x_{A,k} ≥ 0
        for a, b in pairs:
            row = np.zeros(n_vars)
            row[y_offset[(a, b)]] = float(n)
            for k in range(n):
                step = float(k + 1)  # the paper's k runs from 1 to |S|
                row[index_of[b] * n + k] -= step
                row[index_of[a] * n + k] += step
            constraints.append(LinearConstraint(row, 0.0, np.inf))

        if self._tighten:
            # transitivity cuts: y_AB + y_BC + y_CA ≤ 2 for distinct A,B,C
            for a in features:
                for b in features:
                    for c in features:
                        if len({a, b, c}) != 3:
                            continue
                        row = np.zeros(n_vars)
                        row[y_offset[(a, b)]] = 1.0
                        row[y_offset[(b, c)]] = 1.0
                        row[y_offset[(c, a)]] = 1.0
                        constraints.append(
                            LinearConstraint(row, -np.inf, 2.0)
                        )

        # HiGHS's default relative MIP gap (1e-4) lets it declare an
        # incumbent "optimal" while a strictly better order exists — close
        # coefficients make that a *different* tuning order, not just a
        # slightly-off objective. The models here are tiny; demand proof.
        options: dict[str, float] = {"mip_rel_gap": 0.0}
        if self._time_limit_s is not None:
            options["time_limit"] = self._time_limit_s
        started = time.perf_counter()
        result = milp(
            c=objective,
            integrality=np.ones(n_vars),
            bounds=(0, 1),
            constraints=constraints,
            options=options,
        )
        elapsed = time.perf_counter() - started
        # On a time limit HiGHS may still carry a feasible incumbent; use
        # it — but only if it exists, is from a usable solver outcome, and
        # is actually integral (a fractional relaxation point is not a
        # tuning order).
        status = _MILP_STATUS.get(result.status, f"unknown({result.status})")
        if result.x is None:
            raise OrderingError(
                f"ordering LP failed ({status}): {result.message}; "
                "no feasible incumbent available"
            )
        if result.status not in (0, 1):
            raise OrderingError(
                f"ordering LP failed ({status}): {result.message}"
            )
        solution = result.x
        if np.abs(solution - np.round(solution)).max() > 1e-6:
            raise OrderingError(
                f"ordering LP returned a fractional incumbent ({status}); "
                "increase the time limit to obtain an integral order"
            )
        order: list[str | None] = [None] * n
        for a in features:
            for k in range(n):
                if solution[index_of[a] * n + k] > 0.5:
                    if order[k] is not None:
                        raise OrderingError(
                            f"LP assigned two features to step {k + 1}"
                        )
                    order[k] = a
        if any(slot is None for slot in order):
            raise OrderingError("LP left a tuning step unassigned")
        final_order = tuple(order)  # type: ignore[arg-type]

        precedence = {
            (a, b): int(round(solution[y_offset[(a, b)]])) for a, b in pairs
        }
        n_variables, n_constraints = model_statistics(n)
        return OrderingSolution(
            order=final_order,
            objective=ordering_objective(matrix, final_order),
            n_variables=n_variables,
            n_constraints=n_constraints,
            solver="scipy-milp/HiGHS",
            solve_seconds=elapsed,
            precedence=precedence,
            status=status,
        )
