"""Exact permutation search: the oracle the LP is verified against.

Exhaustively evaluates the Section III-B objective for every permutation.
Usable up to |S| ≈ 9; the LP covers larger instances ("allows the
consideration of many features").
"""

from __future__ import annotations

import itertools
import time

from repro.errors import OrderingError
from repro.ordering.dependence import DependenceMatrix, ordering_objective
from repro.ordering.lp import OrderingSolution, model_statistics

_MAX_EXHAUSTIVE_FEATURES = 9


class BruteForceOrderOptimizer:
    """Evaluates all |S|! permutations and returns the best."""

    name = "brute-force"

    def optimize(self, matrix: DependenceMatrix) -> OrderingSolution:
        n = len(matrix.features)
        if n < 2:
            raise OrderingError("ordering needs at least two features")
        if n > _MAX_EXHAUSTIVE_FEATURES:
            raise OrderingError(
                f"{n}! permutations is too many for exhaustive search; "
                "use the LP optimizer"
            )
        started = time.perf_counter()
        best_order: tuple[str, ...] | None = None
        best_value = -float("inf")
        for permutation in itertools.permutations(matrix.features):
            value = ordering_objective(matrix, permutation)
            if value > best_value:
                best_value = value
                best_order = permutation
        elapsed = time.perf_counter() - started
        assert best_order is not None
        position = {name: i for i, name in enumerate(best_order)}
        precedence = {
            (a, b): 1 if position[a] < position[b] else 0
            for a, b in matrix.ordered_pairs()
        }
        n_variables, n_constraints = model_statistics(n)
        return OrderingSolution(
            order=best_order,
            objective=best_value,
            n_variables=n_variables,
            n_constraints=n_constraints,
            solver="exhaustive",
            solve_seconds=elapsed,
            precedence=precedence,
        )
