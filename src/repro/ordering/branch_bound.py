"""Pure-Python branch-and-bound order optimizer.

A solver-independent exact method: depth-first search over order prefixes
with an admissible upper bound (fixed pairs contribute their coefficient;
undecided pairs contribute the better of their two directions). Serves as a
cross-check for the MILP and scales further than exhaustive enumeration.
"""

from __future__ import annotations

import time

from repro.errors import OrderingError
from repro.ordering.dependence import DependenceMatrix, ordering_objective
from repro.ordering.lp import OrderingSolution, model_statistics


class BranchAndBoundOrderOptimizer:
    """Exact DFS with an optimistic completion bound."""

    name = "branch-and-bound"

    def optimize(self, matrix: DependenceMatrix) -> OrderingSolution:
        features = matrix.features
        n = len(features)
        if n < 2:
            raise OrderingError("ordering needs at least two features")
        coefficient = {
            (a, b): matrix.objective_coefficient(a, b)
            for a, b in matrix.ordered_pairs()
        }
        #: optimistic value of an undecided pair
        pair_best = {
            frozenset((a, b)): max(coefficient[(a, b)], coefficient[(b, a)])
            for a, b in matrix.ordered_pairs()
        }

        started = time.perf_counter()
        best_value = -float("inf")
        best_order: tuple[str, ...] | None = None

        def bound(prefix: list[str], prefix_value: float, remaining: set[str]) -> float:
            optimistic = prefix_value
            # pairs between a placed feature and any remaining feature are
            # already directed: placed-before-remaining
            for placed in prefix:
                for free in remaining:
                    optimistic += coefficient[(placed, free)]
            remaining_list = list(remaining)
            for i, a in enumerate(remaining_list):
                for b in remaining_list[i + 1:]:
                    optimistic += pair_best[frozenset((a, b))]
            return optimistic

        def value_of_prefix(prefix: list[str]) -> float:
            total = 0.0
            for i, a in enumerate(prefix):
                for b in prefix[i + 1:]:
                    total += coefficient[(a, b)]
            return total

        def dfs(prefix: list[str], remaining: set[str]) -> None:
            nonlocal best_value, best_order
            if not remaining:
                value = value_of_prefix(prefix)
                if value > best_value:
                    best_value = value
                    best_order = tuple(prefix)
                return
            prefix_value = value_of_prefix(prefix)
            if bound(prefix, prefix_value, remaining) <= best_value:
                return
            # explore the most promising next feature first
            ranked = sorted(
                remaining,
                key=lambda f: sum(
                    coefficient[(f, other)] for other in remaining if other != f
                ),
                reverse=True,
            )
            for feature in ranked:
                prefix.append(feature)
                remaining.discard(feature)
                dfs(prefix, remaining)
                remaining.add(feature)
                prefix.pop()

        dfs([], set(features))
        elapsed = time.perf_counter() - started
        if best_order is None:
            raise OrderingError("branch and bound found no order")
        final_order = best_order
        position = {name: i for i, name in enumerate(final_order)}
        precedence = {
            (a, b): 1 if position[a] < position[b] else 0
            for a, b in matrix.ordered_pairs()
        }
        n_variables, n_constraints = model_statistics(n)
        return OrderingSolution(
            order=final_order,
            objective=ordering_objective(matrix, final_order),
            n_variables=n_variables,
            n_constraints=n_constraints,
            solver="branch-and-bound",
            solve_seconds=elapsed,
            precedence=precedence,
        )
