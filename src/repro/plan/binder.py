"""Bind-time resolution: the plan facts that must stay out of the plan.

A chunk's effective storage tier depends on the buffer pool's *current*
contents, which change with every admission — baking it into a compiled
plan would force a recompile on every pool movement. Instead, every plan
consumer resolves the tier per execution through :func:`resolve_tier`,
with the same semantics the executor and the cost model historically
shared: a non-DRAM chunk that hits the pool behaves as DRAM for this
access.

``admit=True`` is the executor's accounted path (misses admit the chunk,
hits refresh LRU order); ``admit=False`` is the side-effect-free peek used
by probe-mode execution and analytic pricing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dbms.storage_tiers import StorageTier

if TYPE_CHECKING:
    from repro.dbms.chunk import Chunk
    from repro.dbms.executor import BufferPool


def resolve_tier(
    chunk: "Chunk",
    table_name: str,
    pool: "BufferPool",
    admit: bool,
) -> tuple[StorageTier, bool | None]:
    """Effective tier of ``chunk`` for one access, and the pool outcome.

    Returns ``(tier, hit)`` where ``hit`` is ``None`` for DRAM-resident
    chunks (the pool is not consulted), ``True`` for a buffer-pool hit
    (tier softened to DRAM), and ``False`` for a miss.
    """
    tier = chunk.tier
    if tier is StorageTier.DRAM:
        return tier, None
    key = (table_name, chunk.chunk_id)
    if admit:
        hit = pool.access(key, chunk.data_bytes())
    else:
        hit = pool.peek(key)
    if hit:
        return StorageTier.DRAM, True
    return tier, False
