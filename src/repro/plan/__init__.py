"""The unified physical-plan layer.

One :class:`~repro.plan.planner.QueryPlanner` compiles ``(query, table,
plan epoch)`` into a :class:`~repro.plan.ir.PhysicalPlan` that the query
executor executes, the physical cost model prices, and the what-if
optimizer's probe path reuses — see :doc:`docs/planner` for the
lifecycle.
"""

from repro.plan.binder import resolve_tier
from repro.plan.cache import CompiledPlanCache, PlanCacheStats
from repro.plan.ir import PRUNE_CHECK_UNITS, PhysicalPlan, PlanStep, StepKind
from repro.plan.kernel import PlanKernel, kernel_for
from repro.plan.planner import DEFAULT_PLAN_CACHE_SIZE, QueryPlanner

__all__ = [
    "DEFAULT_PLAN_CACHE_SIZE",
    "PRUNE_CHECK_UNITS",
    "CompiledPlanCache",
    "PhysicalPlan",
    "PlanCacheStats",
    "PlanKernel",
    "PlanStep",
    "QueryPlanner",
    "StepKind",
    "kernel_for",
    "resolve_tier",
]
