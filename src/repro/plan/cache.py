"""The compiled-plan cache: epoch-keyed LRU of :class:`PhysicalPlan`.

Mirrors the what-if cost cache pattern (:mod:`repro.cost.what_if`): keys
are ``(plan_epoch, query)``, where the database's *plan epoch* identifies
the structural state plans depend on — physical design (indexes,
encodings, sort orders, placements) and schema, but **not** buffer-pool
traffic, which compiled plans survive because tiers are resolved at bind
time. Every structural mutation bumps the plan epoch, so stale plans are
never served; entries for dead epochs simply age out of the LRU.

This cache stores *how to execute* a query and must not be confused with
:class:`repro.dbms.plan_cache.QueryPlanCache`, which stores *execution
history* per template for the workload predictor.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.plan.ir import PhysicalPlan

if TYPE_CHECKING:
    from repro.workload.query import Query


@dataclass(frozen=True)
class PlanCacheStats:
    """Cumulative counters of *one* compiled-plan cache.

    Stats are strictly per cache instance — in a fleet every tenant's
    planner owns its own — and never shared between tenants; a fleet-wide
    view is an explicit :meth:`aggregate` over the per-tenant stats, so
    one tenant's hit rate can never pollute another's KPIs.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache; 0 when unused."""
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
            "size": float(self.size),
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def aggregate(cls, stats: Iterable["PlanCacheStats"]) -> "PlanCacheStats":
        """Fleet rollup: field-wise sum over per-tenant stats.

        ``hit_rate`` is derived from the summed hits/misses (a mean of
        per-tenant rates would weight an idle tenant like a hot one).
        """
        hits = misses = evictions = invalidations = size = 0
        for s in stats:
            hits += s.hits
            misses += s.misses
            evictions += s.evictions
            invalidations += s.invalidations
            size += s.size
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            invalidations=invalidations,
            size=size,
        )


class CompiledPlanCache:
    """A bounded LRU mapping ``(plan_epoch, query)`` to compiled plans."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be non-negative")
        self._capacity = capacity
        self._plans: OrderedDict[tuple[int, "Query"], PhysicalPlan] = (
            OrderedDict()
        )

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._plans)

    def resize(self, capacity: int) -> None:
        """Change the LRU bound; shrinking evicts oldest entries first."""
        if capacity < 0:
            raise ValueError("plan cache capacity must be non-negative")
        self._capacity = capacity
        while len(self._plans) > self._capacity:
            self._plans.popitem(last=False)

    def get(self, epoch: int, query: "Query") -> PhysicalPlan | None:
        plan = self._plans.get((epoch, query))
        if plan is not None:
            self._plans.move_to_end((epoch, query))
        return plan

    def put(self, epoch: int, query: "Query", plan: PhysicalPlan) -> int:
        """Store a plan; returns the number of entries evicted to fit."""
        if self._capacity == 0:
            return 0
        self._plans[(epoch, query)] = plan
        evicted = 0
        while len(self._plans) > self._capacity:
            self._plans.popitem(last=False)
            evicted += 1
        return evicted

    def discard(self, epoch: int, query: "Query") -> None:
        self._plans.pop((epoch, query), None)

    def clear(self) -> None:
        self._plans.clear()
