"""Compile-time kernel arrays derived from a :class:`PhysicalPlan`.

The executor's hot path used to re-discover the same per-step facts on
every execution: which chunks are pruned, what each prune charge is, the
per-row output width, the access-path tag recorded per chunk. All of
those are compile-time-stable, so the :class:`PlanKernel` freezes them
(pre-bound predicate triples, per-step fixed charges, the per-chunk
trace) exactly once per compiled plan. The batched executor kernel
(:mod:`repro.dbms.kernel`) then visits only the *surviving* (non-pruned)
chunks in Python and prices whole plans with vectorized array
arithmetic, while the pruned majority is settled by the frozen charges.

Like the rest of the plan layer this module imports nothing from the
DBMS substrate, so the arrays can be shared by the executor, the cost
models, and what-if probing without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plan.ir import (
    PRUNE_CHECK_UNITS,
    PhysicalPlan,
    PlanStep,
    StepKind,
)

@dataclass(frozen=True)
class LiveStep:
    """One non-pruned step, with its predicates pre-bound for the kernel."""

    #: position of the step in the plan (== chunk position in the table)
    position: int
    step: PlanStep
    #: ``(column, op, value)`` triples of ``step.scan_predicates``, in
    #: evaluation order — unpacked once so the per-execution loop never
    #: touches Predicate attributes
    predicates: tuple[tuple[str, str, object], ...]
    #: the step's per-row projected output width, pre-bound as a float
    width: float
    #: pre-bound probe arguments (INDEX_PROBE steps; empty/zero otherwise)
    index_key: tuple[str, ...] | None
    equal_values: tuple[object, ...]
    range_predicates: tuple[tuple[str, object], ...]
    probed_columns: int


@dataclass(frozen=True)
class PlanKernel:
    """Per-plan compile-time facts the batched executor kernel runs from.

    Compilation happens once per (plan epoch, query) while executions of a
    cached plan repeat, so construction stays a single pure-Python pass;
    the mixed-tier pricing array is materialised lazily via
    :meth:`fixed_units_array` the first time a plan actually meets a
    non-DRAM chunk.
    """

    #: number of steps (== chunks the plan was compiled against)
    size: int
    #: per-step compile-time scan-unit charges as plain Python floats: the
    #: zone-map check cost for PRUNE steps, 0 elsewhere (data-dependent
    #: work is filled at run time); the all-DRAM pricing fast path folds
    #: these in pure Python, which beats numpy at plan sizes
    fixed_scan_tuple: tuple[float, ...]
    #: ``(chunk_id, kind)`` per step — the WorkSummary.per_chunk trace
    per_chunk: tuple[tuple[int, StepKind], ...]
    #: the non-PRUNE steps, in plan order
    live: tuple[LiveStep, ...]
    #: number of INDEX_PROBE steps
    index_count: int
    #: scratch space for per-execution caches the executor kernel maintains
    #: (tier scans keyed by :attr:`repro.dbms.chunk.Chunk.tier_epoch`,
    #: priced fixed charges keyed by pricing coefficients); mutable on the
    #: frozen dataclass by design — it holds memoised derivations only
    cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def all_pruned(self) -> bool:
        return not self.live

    def fixed_units_array(self) -> np.ndarray:
        """:attr:`fixed_scan_tuple` as a float64 array (lazy, memoised) —
        the base the mixed-tier pricing pass copies and fills."""
        units = self.cache.get("fixed_units")
        if units is None:
            units = np.array(self.fixed_scan_tuple, dtype=np.float64)
            self.cache["fixed_units"] = units
        return units

    @classmethod
    def from_plan(cls, plan: PhysicalPlan) -> "PlanKernel":
        steps = plan.steps
        fixed: list[float] = []
        per_chunk: list[tuple[int, StepKind]] = []
        live: list[LiveStep] = []
        index_count = 0
        for i, step in enumerate(steps):
            kind = step.kind
            per_chunk.append((step.chunk_id, kind))
            if kind is StepKind.PRUNE:
                fixed.append(PRUNE_CHECK_UNITS * step.predicate_count)
                continue
            fixed.append(0.0)
            if kind is StepKind.INDEX_PROBE:
                index_count += 1
            live.append(
                LiveStep(
                    position=i,
                    step=step,
                    predicates=tuple(
                        (p.column, p.op, p.value)
                        for p in step.scan_predicates
                    ),
                    width=float(step.output_width),
                    index_key=step.index_key,
                    equal_values=step.equal_values,
                    range_predicates=step.range_predicates,
                    probed_columns=step.probed_columns,
                )
            )
        return cls(
            size=len(steps),
            fixed_scan_tuple=tuple(fixed),
            per_chunk=tuple(per_chunk),
            live=tuple(live),
            index_count=index_count,
        )


def kernel_for(plan: PhysicalPlan) -> PlanKernel:
    """The (memoised) kernel arrays of ``plan``.

    Built on first use and cached on the plan object itself, so every
    consumer of a cached plan — executor, probe-mode pricing — shares one
    set of arrays for the plan's whole cache lifetime.
    """
    kernel = plan.__dict__.get("_kernel")
    if kernel is None:
        kernel = PlanKernel.from_plan(plan)
        object.__setattr__(plan, "_kernel", kernel)
    return kernel
