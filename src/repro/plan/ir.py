"""The physical-plan intermediate representation.

A :class:`PhysicalPlan` is the compiled form of one query against one
table's current physical design: an ordered list of per-chunk
:class:`PlanStep` objects, one per chunk, each choosing exactly one of
three access paths:

- :attr:`StepKind.PRUNE` — zone-map statistics disprove a predicate, so
  the chunk is skipped after charging only the metadata check;
- :attr:`StepKind.INDEX_PROBE` — a composite index covers a predicate
  prefix; the probe result is filtered by the residual predicates;
- :attr:`StepKind.FULL_SCAN` — sequential predicate evaluation over the
  chunk's segments.

The IR deliberately contains only *compile-time-stable* facts: step
kinds, index key columns (not index objects — indexes are rebuilt by
re-encodes and sorts, so they are looked up again at bind time), residual
predicate order, estimated selectivities, and per-row output widths from
chunk statistics. Storage tier and buffer-pool residency are **not** part
of a plan — they change with every pool admission and are resolved at
bind time by whoever consumes the plan (see :mod:`repro.plan.binder`).
That split is what lets one compiled plan be shared by the query executor
(which runs it against real data), the physical cost model (which prices
it from statistics), and the what-if optimizer's probe path — and lets it
stay cached across buffer-pool traffic.

Like :mod:`repro.workload.query`, this module imports nothing from the
DBMS substrate, so every layer can depend on it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.workload.predicate import Predicate
from repro.workload.query import Query


class StepKind(enum.Enum):
    """The access path a plan chose for one chunk."""

    PRUNE = "prune"
    INDEX_PROBE = "index_probe"
    FULL_SCAN = "full_scan"


#: Metadata work charged for consulting chunk min/max statistics — a
#: compile-time pricing fact, owned by the plan layer so the executor
#: kernel, the scalar operators, and the physical cost model all charge
#: the identical amount.
PRUNE_CHECK_UNITS = 0.5


@dataclass(frozen=True)
class PlanStep:
    """The compiled access path for one chunk.

    For ``INDEX_PROBE`` steps, ``index_key``/``equal_values``/
    ``range_predicates`` describe the probe and ``scan_predicates`` holds
    the residual predicates evaluated on the probe result (in evaluation
    order). For ``FULL_SCAN`` steps, ``scan_predicates`` is the full
    predicate list in evaluation order. ``PRUNE`` steps carry only
    ``predicate_count`` (the zone-map checks charged).
    """

    chunk_id: int
    kind: StepKind
    #: number of query predicates (PRUNE steps charge one zone-map check each)
    predicate_count: int
    #: predicates evaluated by scanning segments, in evaluation order
    scan_predicates: tuple[Predicate, ...] = ()
    #: key columns of the probed index (INDEX_PROBE only)
    index_key: tuple[str, ...] | None = None
    #: literals of the equality prefix of the probe
    equal_values: tuple[object, ...] = ()
    #: ``(op, value)`` range bounds on the column after the prefix
    range_predicates: tuple[tuple[str, object], ...] = ()
    #: number of predicates the probe covers
    covered_count: int = 0
    #: estimated fraction of chunk rows the probe returns
    estimated_selectivity: float = 1.0
    #: per-row projected output bytes from chunk statistics (0 for aggregates)
    output_width: float = 0.0

    @property
    def probed_columns(self) -> int:
        """Index key columns the probe actually constrains."""
        return len(self.equal_values) + (1 if self.range_predicates else 0)


@dataclass(frozen=True)
class PhysicalPlan:
    """One compiled query plan: per-chunk steps plus identifying metadata."""

    table: str
    query: Query
    steps: tuple[PlanStep, ...]
    #: chunk count of the table at compile time; a mismatch at lookup time
    #: (rows were appended) invalidates the plan without an epoch bump
    chunk_count: int
    #: the database's plan epoch the plan was compiled under
    plan_epoch: int

    def step_kinds(self) -> tuple[StepKind, ...]:
        """Per-chunk access-path kinds, in chunk order."""
        return tuple(step.kind for step in self.steps)

    def kernel(self):
        """The plan's memoised :class:`~repro.plan.kernel.PlanKernel`.

        Deferred import: the kernel module depends on this one.
        """
        from repro.plan.kernel import kernel_for

        return kernel_for(self)

    def count(self, kind: StepKind) -> int:
        return sum(1 for step in self.steps if step.kind is kind)

    @property
    def pruned_chunks(self) -> int:
        return self.count(StepKind.PRUNE)

    @property
    def index_chunks(self) -> int:
        return self.count(StepKind.INDEX_PROBE)

    @property
    def scanned_chunks(self) -> int:
        return self.count(StepKind.FULL_SCAN)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(table={self.table!r}, chunks={self.chunk_count}, "
            f"prune={self.pruned_chunks}, index={self.index_chunks}, "
            f"scan={self.scanned_chunks}, epoch={self.plan_epoch})"
        )
