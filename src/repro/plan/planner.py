"""The query planner: one compiler shared by execution and pricing.

``QueryPlanner.plan_for`` compiles ``(query, table)`` under the database's
current *plan epoch* into a :class:`~repro.plan.ir.PhysicalPlan` — an
ordered per-chunk step list choosing prune / index-probe / full-scan —
and memoises the result in an epoch-keyed LRU
(:class:`~repro.plan.cache.CompiledPlanCache`). The query executor runs
compiled plans against real chunk data; the physical cost model prices
the *same* plan objects from statistics; the what-if optimizer's
probe-mode executions flow through the executor and therefore share the
cache too. Before this layer existed the executor and the cost model each
walked the chunks themselves and could silently drift; now the planner is
the single place access paths are chosen (the paper's §II-A.d requirement
that cost-model error come "purely from selectivity estimation").

Cache coherence: the plan epoch (see
:attr:`repro.dbms.database.Database.plan_epoch`) bumps on every
structural mutation — index create/drop, re-encode, sort, placement,
knob flips — so configuration changes invalidate cached plans, while
buffer-pool traffic (which compiled plans survive, tiers being resolved
at bind time) does not. Appends are covered by a chunk-count guard at
lookup time. A planner constructed without an ``epoch_fn`` (or with
``cache_size=0``) compiles fresh on every call — the behaviour of a
standalone executor outside a :class:`~repro.dbms.database.Database`.

The ``plan_compiles`` / ``plan_cache_*`` counters live in a telemetry
:class:`~repro.telemetry.metrics.MetricRegistry` (the driver adopts them
into its shared registry), surfacing compile-skip ratios in
``python -m repro trace`` and the KPI monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.plan.cache import CompiledPlanCache, PlanCacheStats
from repro.plan.ir import PhysicalPlan
from repro.telemetry.metrics import MetricRegistry

if TYPE_CHECKING:
    from repro.dbms.table import Table
    from repro.workload.query import Query

#: Default bound on cached ``(plan_epoch, query)`` plan entries.
DEFAULT_PLAN_CACHE_SIZE = 512

# Planner metric names. Defined here — not in repro.kpi.metrics, which
# re-exports them — because the plan layer sits below the DBMS substrate
# and must not import the KPI package. The names double as the counter
# names in the telemetry MetricRegistry.
PLAN_COMPILES = "plan_compiles"
PLAN_COMPILE_CHUNKS = "plan_compile_chunks"
PLAN_CACHE_HITS = "plan_cache_hits"
PLAN_CACHE_MISSES = "plan_cache_misses"
PLAN_CACHE_EVICTIONS = "plan_cache_evictions"
PLAN_CACHE_INVALIDATIONS = "plan_cache_invalidations"
PLAN_CACHE_SIZE = "plan_cache_size"


class QueryPlanner:
    """Compiles queries into physical plans, with an epoch-keyed cache."""

    def __init__(
        self,
        cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        epoch_fn: Callable[[], int] | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        """``epoch_fn`` reads the owning database's plan epoch; without it
        (standalone executors) every :meth:`plan_for` compiles fresh, since
        no source of invalidation exists. ``cache_size`` bounds the LRU
        (0 disables caching explicitly). ``registry`` is where the
        compile/cache counters are registered; a private registry is used
        when omitted and can be surfaced later via :meth:`bind_registry`.
        """
        self._epoch_fn = epoch_fn
        self._cache = CompiledPlanCache(cache_size if epoch_fn else 0)
        self._registry = registry if registry is not None else MetricRegistry()
        self._compiles = self._registry.counter(PLAN_COMPILES)
        self._compile_chunks = self._registry.counter(PLAN_COMPILE_CHUNKS)
        self._hits = self._registry.counter(PLAN_CACHE_HITS)
        self._misses = self._registry.counter(PLAN_CACHE_MISSES)
        self._evictions = self._registry.counter(PLAN_CACHE_EVICTIONS)
        self._invalidations = self._registry.counter(PLAN_CACHE_INVALIDATIONS)
        self._size_gauge = self._registry.gauge(
            PLAN_CACHE_SIZE, self._cache_len
        )

    def _cache_len(self) -> float:
        """Picklable gauge callback (bound method, not a lambda)."""
        return float(len(self._cache))

    # ------------------------------------------------------------------
    # observability

    @property
    def cache_size(self) -> int:
        """Configured LRU bound of the plan cache (0 = disabled)."""
        return self._cache.capacity

    @property
    def cache_stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=int(self._hits.value),
            misses=int(self._misses.value),
            evictions=int(self._evictions.value),
            invalidations=int(self._invalidations.value),
            size=len(self._cache),
        )

    @property
    def registry(self) -> MetricRegistry:
        """The registry holding the compile/cache counters."""
        return self._registry

    def bind_registry(
        self, registry: MetricRegistry, replace: bool = False
    ) -> None:
        """Surface the planner counters through ``registry`` as well.

        Adopts the existing counter/gauge *objects* (see
        :meth:`~repro.telemetry.metrics.MetricRegistry.adopt`), so counts
        stay continuous and bumps are visible through both registries.
        """
        if registry is self._registry:
            return
        for metric in (
            self._compiles,
            self._compile_chunks,
            self._hits,
            self._misses,
            self._evictions,
            self._invalidations,
            self._size_gauge,
        ):
            registry.adopt(metric, replace=replace)

    def resize_cache(self, cache_size: int) -> None:
        """Re-bound the LRU (0 disables caching); shrinking evicts."""
        self._cache.resize(cache_size if self._epoch_fn else 0)

    def clear_cache(self) -> None:
        """Drop all cached plans (counters are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # compilation

    def compile(self, query: "Query", table: "Table") -> PhysicalPlan:
        """Compile ``query`` against ``table``'s current physical design.

        Always compiles fresh (no cache interaction) — :meth:`plan_for` is
        the memoised entry point consumers should use.
        """
        # deferred: operators imports the plan IR, so a module-level import
        # here would close a cycle through the package __init__
        from repro.dbms.operators import compile_chunk_step

        chunks = table.chunks()
        predicates = tuple(query.predicates)
        # per-row projected output width is chunk statistics the plan can
        # carry, sparing execution from decoding segments just to count
        # output bytes (aggregates materialise a single value instead)
        projected: tuple[str, ...] = ()
        if query.aggregate is None:
            projected = (
                query.projection
                if query.projection is not None
                else tuple(table.schema.column_names)
            )
        steps = []
        for chunk in chunks:
            width = chunk.projected_width(projected) if projected else 0.0
            steps.append(compile_chunk_step(chunk, predicates, width))
        self._compiles.inc()
        self._compile_chunks.inc(float(len(chunks)))
        plan = PhysicalPlan(
            table=table.name,
            query=query,
            steps=tuple(steps),
            chunk_count=len(chunks),
            plan_epoch=self._epoch_fn() if self._epoch_fn else 0,
        )
        # Precompute the execution-kernel arrays (step kinds, chunk ids,
        # prune charges, output widths) while the steps are hot: every
        # later execution of this cached plan runs straight from them.
        plan.kernel()
        return plan

    def plan_for(self, query: "Query", table: "Table") -> PhysicalPlan:
        """The compiled plan for ``query``, from the cache when possible.

        Cached entries are keyed ``(plan_epoch, query)``; an entry whose
        chunk count no longer matches the table (rows were appended since
        compilation) is discarded and recompiled.
        """
        if self._epoch_fn is None or self._cache.capacity == 0:
            return self.compile(query, table)
        epoch = self._epoch_fn()
        plan = self._cache.get(epoch, query)
        if plan is not None:
            if plan.chunk_count == len(table.chunks()):
                self._hits.inc()
                return plan
            self._cache.discard(epoch, query)
            self._invalidations.inc()
        self._misses.inc()
        plan = self.compile(query, table)
        evicted = self._cache.put(epoch, query, plan)
        if evicted:
            self._evictions.inc(float(evicted))
        return plan
