"""Assessors: cost-model based, buffer-pool specific, feedback-calibrated."""

from repro.tuning.assessors.base import Assessor
from repro.tuning.assessors.buffer_pool import BufferPoolAssessor
from repro.tuning.assessors.cost_model import CostModelAssessor
from repro.tuning.assessors.learned_feedback import LearnedFeedbackAssessor
from repro.tuning.assessors.miscalibrated import MiscalibratedAssessor
from repro.tuning.assessors.sort_benefit import SortBenefitAssessor

__all__ = [
    "Assessor",
    "BufferPoolAssessor",
    "CostModelAssessor",
    "LearnedFeedbackAssessor",
    "MiscalibratedAssessor",
    "SortBenefitAssessor",
]
