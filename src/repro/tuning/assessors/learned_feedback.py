"""Feedback-calibrated assessor.

"Learnings from past decisions, i.e., the effect of specific configurations
on runtime KPIs can be incorporated during this step" (Section II-D.b).
This wrapper compares the benefits past tuning rounds *predicted* against
what was later *measured* (both recorded in the configuration instance
storage) and uses the ratio to rescale new desirabilities and shrink the
reported confidence when history shows systematic error.
"""

from __future__ import annotations

import statistics

from repro.configuration.delta import ConfigurationDelta
from repro.configuration.store import ConfigurationInstanceStorage
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment
from repro.tuning.assessors.base import Assessor
from repro.tuning.candidate import Candidate

#: calibration ratios are clipped to this range to keep one bad
#: measurement from inverting assessments
_RATIO_BOUNDS = (0.25, 4.0)
_MIN_FEEDBACK_PAIRS = 3


class LearnedFeedbackAssessor(Assessor):
    """Rescales an inner assessor using stored prediction-vs-measurement pairs."""

    def __init__(
        self,
        inner: Assessor,
        store: ConfigurationInstanceStorage,
        feature: str,
    ) -> None:
        self._inner = inner
        self._store = store
        self._feature = feature

    @property
    def supports_reassessment(self) -> bool:  # type: ignore[override]
        return self._inner.supports_reassessment

    def calibration(self) -> tuple[float, float]:
        """(benefit ratio, confidence factor) learned from stored feedback."""
        pairs = [
            (predicted, measured)
            for predicted, measured in self._store.feedback(self._feature)
            if abs(predicted) > 1e-9
        ]
        if len(pairs) < _MIN_FEEDBACK_PAIRS:
            return 1.0, 1.0
        ratios = [measured / predicted for predicted, measured in pairs]
        ratio = statistics.median(ratios)
        ratio = min(max(ratio, _RATIO_BOUNDS[0]), _RATIO_BOUNDS[1])
        relative_errors = [
            abs(measured - predicted) / max(abs(measured), 1e-9)
            for predicted, measured in pairs
        ]
        confidence_factor = 1.0 / (1.0 + statistics.mean(relative_errors))
        return ratio, confidence_factor

    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        assessments = self._inner.assess(candidates, db, forecast, reset_delta)
        ratio, confidence_factor = self.calibration()
        if ratio == 1.0 and confidence_factor == 1.0:
            return assessments
        for assessment in assessments:
            assessment.desirability = {
                name: value * ratio
                for name, value in assessment.desirability.items()
            }
            assessment.confidence *= confidence_factor
        return assessments
