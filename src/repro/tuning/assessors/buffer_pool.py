"""Specialised assessor for the buffer-pool-size knob.

Probe-mode what-if execution cannot see buffer-pool benefits: probing never
admits chunks, so a larger pool looks worthless. This assessor instead
installs a *scratch* pool of the candidate capacity, replays the expected
workload once to warm it (accesses admit and evict normally), then measures
a second pass — a steady-state estimate of the candidate — and finally
restores the production pool untouched.
"""

from __future__ import annotations

from repro.configuration.constraints import DRAM_BYTES
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.dbms.executor import BufferPool
from repro.dbms.knobs import BUFFER_POOL_KNOB
from repro.errors import TuningError
from repro.forecasting.scenarios import Forecast, WorkloadScenario
from repro.tuning.assessment import Assessment
from repro.tuning.assessors.base import Assessor
from repro.tuning.candidate import Candidate, KnobCandidate


class BufferPoolAssessor(Assessor):
    """Measures buffer-pool capacities with warmed scratch pools."""

    supports_reassessment = False

    def __init__(self, confidence: float = 0.85) -> None:
        self._confidence = confidence

    def _scenario_cost_with_pool(
        self,
        db: Database,
        scenario: WorkloadScenario,
        forecast: Forecast,
        capacity: float,
    ) -> float:
        scratch = BufferPool(capacity)
        previous = db.executor.swap_buffer_pool(scratch)
        try:
            # pass 1: warm the scratch pool (results discarded)
            for key, frequency in scenario.frequencies.items():
                query = forecast.sample_queries.get(key)
                if query is None or frequency <= 0:
                    continue
                db.executor.execute(query, db.table(query.table))
            # pass 2: steady-state measurement
            total = 0.0
            for key, frequency in scenario.frequencies.items():
                query = forecast.sample_queries.get(key)
                if query is None or frequency <= 0:
                    continue
                result = db.executor.execute(query, db.table(query.table))
                total += frequency * result.report.elapsed_ms
            return total
        finally:
            db.executor.swap_buffer_pool(previous)

    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        for candidate in candidates:
            if not (
                isinstance(candidate, KnobCandidate)
                and candidate.name == BUFFER_POOL_KNOB
            ):
                raise TuningError(
                    "BufferPoolAssessor only assesses buffer_pool_bytes "
                    f"candidates, got {candidate.describe()}"
                )
        del reset_delta  # the scratch pool itself is the reset baseline

        default_capacity = db.knobs.definition(BUFFER_POOL_KNOB).default
        baseline = {
            scenario.name: self._scenario_cost_with_pool(
                db, scenario, forecast, default_capacity
            )
            for scenario in forecast.scenarios
        }

        assessments = []
        for candidate in candidates:
            desirability = {}
            for scenario in forecast.scenarios:
                cost = self._scenario_cost_with_pool(
                    db, scenario, forecast, candidate.value
                )
                desirability[scenario.name] = baseline[scenario.name] - cost
            assessments.append(
                Assessment(
                    candidate=candidate,
                    desirability=desirability,
                    confidence=self._confidence,
                    # the pool reserves DRAM for as long as the knob is set
                    permanent_costs={DRAM_BYTES: float(candidate.value)},
                    one_time_cost_ms=ConfigurationDelta(
                        candidate.actions()
                    ).estimate_cost_ms(db),
                )
            )
        return assessments
