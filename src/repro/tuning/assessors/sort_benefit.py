"""Anticipating assessor for sort-order candidates.

Sorting a chunk changes nothing by itself — scanning an unencoded segment
costs the same in any row order — so a purely myopic assessment would
reject every sort and the joint sort+run-length win could never be
discovered by recursive single-feature tuning, in any order.

This assessor therefore prices a sort candidate by its *enabling* benefit:
with the sort hypothetically applied, it tries every supported encoding on
the sorted column and reports the best achievable workload cost. The
benefit is delivered only if a later compression run actually picks that
encoding, so the confidence is reduced accordingly — precisely the kind of
cross-feature anticipation the paper's dependence discussion (Section III)
motivates.
"""

from __future__ import annotations

from repro.configuration.actions import SetEncodingAction
from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.dbms.segments import supported_encodings
from repro.errors import TuningError
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment, scenario_benefits
from repro.tuning.assessors.base import Assessor
from repro.tuning.candidate import Candidate, SortOrderCandidate


class SortBenefitAssessor(Assessor):
    """Measures each sort candidate at its best follow-up encoding."""

    supports_reassessment = False

    def __init__(
        self, optimizer: WhatIfOptimizer, confidence: float = 0.7
    ) -> None:
        """Confidence defaults below the measuring assessor's because the
        benefit depends on a subsequent compression tuning realising it."""
        self._optimizer = optimizer
        self._confidence = confidence

    def _template_costs(self, forecast: Forecast, table: str) -> dict[str, float]:
        keys = []
        queries = []
        for key, query in forecast.sample_queries.items():
            if query.table == table:
                keys.append(key)
                queries.append(query)
        # batched pricing: one epoch read and one pass of cache lookups
        return dict(zip(keys, self._optimizer.batch_query_costs(queries)))

    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        del reset_delta  # sort order has no reset baseline (incremental)
        for candidate in candidates:
            if not isinstance(candidate, SortOrderCandidate):
                raise TuningError(
                    "SortBenefitAssessor only assesses sort-order "
                    f"candidates, got {candidate.describe()}"
                )
        assessments: list[Assessment] = []
        baseline_cache: dict[str, dict[str, float]] = {}
        for candidate in candidates:
            table = db.table(candidate.table)
            if candidate.table not in baseline_cache:
                baseline_cache[candidate.table] = self._template_costs(
                    forecast, candidate.table
                )
            baseline = baseline_cache[candidate.table]
            delta = ConfigurationDelta(candidate.actions())
            one_time = delta.estimate_cost_ms(db)
            data_type = table.schema.data_type(candidate.column)

            best_costs: dict[str, float] | None = None
            with self._optimizer.hypothetical(delta):
                for encoding in supported_encodings(data_type):
                    encode = ConfigurationDelta(
                        [
                            SetEncodingAction(
                                candidate.table,
                                candidate.column,
                                encoding,
                                candidate.chunk_ids,
                            )
                        ]
                    )
                    with self._optimizer.hypothetical(encode):
                        costs = self._template_costs(forecast, candidate.table)
                    total = sum(costs.values())
                    if best_costs is None or total < sum(best_costs.values()):
                        best_costs = costs
            assert best_costs is not None

            desirability = scenario_benefits(
                forecast.scenarios, baseline, best_costs
            )
            assessments.append(
                Assessment(
                    candidate=candidate,
                    desirability=desirability,
                    confidence=self._confidence,
                    permanent_costs={},  # sorting occupies no extra memory
                    one_time_cost_ms=one_time,
                )
            )
        return assessments
