"""The cost-model assessor: desirability via what-if cost estimation.

For every candidate the assessor hypothetically applies it (on top of the
feature's reset baseline), re-prices each affected query template, and
reports per-scenario benefit, measured permanent resource deltas, and the
estimated one-time reconfiguration cost. The accuracy/runtime trade-off is
chosen through the wrapped :class:`~repro.cost.what_if.WhatIfOptimizer`:
probe-mode measured execution (accurate, slower) or an analytic estimator
(fast, approximate).
"""

from __future__ import annotations

from repro.configuration.constraints import DRAM_BYTES, INDEX_MEMORY, TOTAL_MEMORY
from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.dbms.knobs import BUFFER_POOL_KNOB
from repro.dbms.storage_tiers import StorageTier
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment, scenario_benefits
from repro.tuning.assessors.base import Assessor
from repro.tuning.candidate import (
    Candidate,
    EncodingCandidate,
    IndexCandidate,
    PlacementCandidate,
)


def _memory_snapshot(db: Database) -> dict[str, float]:
    return {
        INDEX_MEMORY: float(db.index_bytes()),
        TOTAL_MEMORY: float(db.memory_bytes()),
        DRAM_BYTES: float(db.tier_usage()[StorageTier.DRAM])
        + db.knobs.get(BUFFER_POOL_KNOB),
    }


def _affected_tables(candidate: Candidate) -> set[str] | None:
    """Tables whose query costs the candidate can change; None = all."""
    if isinstance(candidate, (IndexCandidate, EncodingCandidate)):
        return {candidate.table}
    if isinstance(candidate, PlacementCandidate):
        return {candidate.table}
    return None


class CostModelAssessor(Assessor):
    """Prices candidates with a what-if optimizer."""

    supports_reassessment = True

    def __init__(
        self, optimizer: WhatIfOptimizer, confidence: float | None = None
    ) -> None:
        self._optimizer = optimizer
        if confidence is None:
            # measured probe execution is near-exact; analytic models less so
            confidence = 0.95 if optimizer.is_measured else 0.6
        self._confidence = confidence

    def _template_costs(
        self, forecast: Forecast, tables: set[str] | None
    ) -> dict[str, float]:
        keys = []
        queries = []
        for key, query in forecast.sample_queries.items():
            if tables is not None and query.table not in tables:
                continue
            keys.append(key)
            queries.append(query)
        # batched pricing: one epoch read and one pass of cache lookups
        # for the whole template set
        return dict(zip(keys, self._optimizer.batch_query_costs(queries)))

    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        # One-time costs reflect application from the *current* state.
        one_time = [
            ConfigurationDelta(c.actions()).estimate_cost_ms(db)
            for c in candidates
        ]
        scenario_names = forecast.scenario_names
        assessments: list[Assessment] = []

        def run() -> None:
            baseline_costs = self._template_costs(forecast, None)
            baseline_memory = _memory_snapshot(db)
            for candidate, apply_cost in zip(candidates, one_time):
                delta = ConfigurationDelta(candidate.actions())
                tables = _affected_tables(candidate)
                with self._optimizer.hypothetical(delta):
                    new_costs = dict(baseline_costs)
                    new_costs.update(self._template_costs(forecast, tables))
                    new_memory = _memory_snapshot(db)
                desirability = scenario_benefits(
                    [forecast.scenario(name) for name in scenario_names],
                    baseline_costs,
                    new_costs,
                )
                permanent = {
                    resource: new_memory[resource] - baseline_memory[resource]
                    for resource in baseline_memory
                }
                assessments.append(
                    Assessment(
                        candidate=candidate,
                        desirability=desirability,
                        confidence=self._confidence,
                        permanent_costs=permanent,
                        one_time_cost_ms=apply_cost,
                    )
                )

        if reset_delta is not None and not reset_delta.is_empty:
            with self._optimizer.hypothetical(reset_delta):
                run()
        else:
            run()
        return assessments
