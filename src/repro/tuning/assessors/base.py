"""Assessor interface.

"This component provides an assessment of the previously generated
candidates … Choosing an assessor is a trade-off between accuracy and
runtime" (Section II-D.b). Assessors price candidates against a *feature
reset baseline* (e.g. "no indexes", "all unencoded") supplied by the
feature tuner, so selection-from-scratch semantics hold: every candidate's
desirability and permanent cost is measured from the same clean slate while
the rest of the configuration stays as it currently is.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment
from repro.tuning.candidate import Candidate


class Assessor(ABC):
    """Assigns desirability, confidence, and costs to candidates."""

    #: whether selectors may call :meth:`assess` again mid-selection to
    #: reflect interactions with already-chosen candidates
    supports_reassessment: bool = False

    @abstractmethod
    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        """Assess all candidates; order matches the input order."""
