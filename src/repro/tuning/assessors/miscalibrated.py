"""A deliberately wrong assessor: the guard's adversary.

Wraps any real assessor and distorts its desirabilities by a scale
factor. With a negative scale the assessor inverts its own judgement —
harmful candidates look attractive and vice versa — modelling a badly
miscalibrated cost model whose pass *applies cleanly* but regresses
runtime KPIs. PR 3's fault injector cannot produce this failure mode
(it breaks applications, not judgement); the commit guard exists for
exactly this case, and bench_e16_guard / the guard tests use this
wrapper to provoke it deterministically.
"""

from __future__ import annotations

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.errors import TuningError
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment
from repro.tuning.assessors.base import Assessor
from repro.tuning.candidate import Candidate


class MiscalibratedAssessor(Assessor):
    """Scales (or, with ``scale < 0``, inverts) another assessor's verdicts."""

    def __init__(self, inner: Assessor, scale: float = -1.0) -> None:
        if scale == 0:
            raise TuningError(
                "scale must be nonzero (0 would erase all desirability)"
            )
        self._inner = inner
        self._scale = scale
        self.supports_reassessment = inner.supports_reassessment

    @property
    def inner(self) -> Assessor:
        return self._inner

    @property
    def scale(self) -> float:
        return self._scale

    def assess(
        self,
        candidates: list[Candidate],
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
    ) -> list[Assessment]:
        assessments = self._inner.assess(
            candidates, db, forecast, reset_delta=reset_delta
        )
        for assessment in assessments:
            assessment.desirability = {
                name: value * self._scale
                for name, value in assessment.desirability.items()
            }
        return assessments
