"""Tuning candidates.

"Candidates can be of various forms to represent different types, i.e.,
physical design features or knobs. For discrete problems, for example for
index selection, candidates would be a set of lists … of attributes. For
continuous problems, e.g., the decision about the buffer pool size,
candidates are specified by providing the start and the end of a range …
and the smallest available intervals" (Section II-D.a).

Every candidate knows the :class:`~repro.configuration.actions.Action` list
that realises it. Candidates may belong to an *exclusion group* — at most
one member of a group can be selected — and groups may be *required*
(exactly one must be selected), which is how alternatives like "encoding of
column X" or "tier of chunk 3" are modelled uniformly across selectors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.configuration.actions import (
    Action,
    CreateIndexAction,
    MoveChunkAction,
    SetEncodingAction,
    SetKnobAction,
    SortChunkAction,
)
from repro.dbms.segments import EncodingType
from repro.dbms.storage_tiers import StorageTier


class Candidate(ABC):
    """One selectable configuration option."""

    #: name of the feature this candidate belongs to
    feature: str = "unknown"

    @abstractmethod
    def actions(self) -> list[Action]:
        """Actions that realise this candidate."""

    @property
    def group(self) -> str | None:
        """Exclusion group (at most/exactly one member selected), if any."""
        return None

    @property
    def group_required(self) -> bool:
        """Whether the group must have exactly one selected member."""
        return False

    @abstractmethod
    def describe(self) -> str:
        """Human-readable one-line summary."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class IndexCandidate(Candidate):
    """An index over a list of attributes, optionally chunk-scoped."""

    table: str
    columns: tuple[str, ...]
    chunk_ids: tuple[int, ...] | None = None

    feature = "index_selection"

    def actions(self) -> list[Action]:
        return [CreateIndexAction(self.table, self.columns, self.chunk_ids)]

    def describe(self) -> str:
        scope = (
            "all chunks"
            if self.chunk_ids is None
            else f"chunks {list(self.chunk_ids)}"
        )
        return f"index {self.table}({', '.join(self.columns)}) [{scope}]"


@dataclass(frozen=True)
class EncodingCandidate(Candidate):
    """An encoding choice for one column (whole table or chunk subset)."""

    table: str
    column: str
    encoding: EncodingType
    chunk_ids: tuple[int, ...] | None = None

    feature = "compression"

    def actions(self) -> list[Action]:
        return [
            SetEncodingAction(self.table, self.column, self.encoding, self.chunk_ids)
        ]

    @property
    def group(self) -> str:
        scope = "*" if self.chunk_ids is None else ",".join(map(str, self.chunk_ids))
        return f"encoding:{self.table}.{self.column}[{scope}]"

    @property
    def group_required(self) -> bool:
        return True

    def describe(self) -> str:
        scope = (
            "all chunks"
            if self.chunk_ids is None
            else f"chunks {list(self.chunk_ids)}"
        )
        return (
            f"encode {self.table}.{self.column} as {self.encoding.value} "
            f"[{scope}]"
        )


@dataclass(frozen=True)
class PlacementCandidate(Candidate):
    """A storage tier choice for one chunk."""

    table: str
    chunk_id: int
    tier: StorageTier

    feature = "data_placement"

    def actions(self) -> list[Action]:
        return [MoveChunkAction(self.table, self.chunk_id, self.tier)]

    @property
    def group(self) -> str:
        return f"placement:{self.table}[{self.chunk_id}]"

    @property
    def group_required(self) -> bool:
        return True

    def describe(self) -> str:
        return f"place {self.table}[{self.chunk_id}] on {self.tier.value}"


@dataclass(frozen=True)
class SortOrderCandidate(Candidate):
    """A physical sort order (by one column) for a chunk scope.

    At most one sort order can hold per chunk scope, so candidates form an
    optional exclusion group: selecting none keeps the current row order
    (sorting cannot be diffed back to ingest order).
    """

    table: str
    column: str
    chunk_ids: tuple[int, ...] | None = None

    feature = "sort_order"

    def actions(self) -> list[Action]:
        return [SortChunkAction(self.table, self.column, self.chunk_ids)]

    @property
    def group(self) -> str:
        scope = "*" if self.chunk_ids is None else ",".join(map(str, self.chunk_ids))
        return f"sort:{self.table}[{scope}]"

    def describe(self) -> str:
        scope = (
            "all chunks"
            if self.chunk_ids is None
            else f"chunks {list(self.chunk_ids)}"
        )
        return f"sort {self.table} by {self.column} [{scope}]"


@dataclass(frozen=True)
class KnobCandidate(Candidate):
    """One settable value of a knob (a point from its range)."""

    name: str
    value: float
    feature_name: str = "knobs"

    @property
    def feature(self) -> str:  # type: ignore[override]
        return self.feature_name

    def actions(self) -> list[Action]:
        return [SetKnobAction(self.name, self.value)]

    @property
    def group(self) -> str:
        return f"knob:{self.name}"

    @property
    def group_required(self) -> bool:
        return True

    def describe(self) -> str:
        return f"set {self.name} = {self.value}"
