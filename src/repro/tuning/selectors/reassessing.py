"""Greedy selection with interaction-aware re-assessment.

"Selectors can also request re-assessments of certain candidates from the
assessors. This is useful to reflect changed circumstances or incorporate
interaction between candidates" (Section II-D.c).

Plain selectors score candidates by assessments taken against the feature's
reset baseline, so two overlapping candidates (e.g. an index on ``(a)`` and
one on ``(a, b)``) are both credited with the full benefit of serving the
same queries. This selector picks one candidate at a time and, after each
pick, asks the assessor to re-assess the remaining candidates *with the
chosen ones hypothetically applied* — the classic greedy algorithm of
index-selection tools, expressed through the framework's re-assessment
hook.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.errors import SelectionError
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessment import Assessment
from repro.tuning.assessors.base import Assessor
from repro.tuning.selectors.base import (
    ScoreFn,
    Selector,
    budget_violations,
    default_score_fn,
    resource_usage,
)


class ReassessingGreedySelector(Selector):
    """One-at-a-time greedy with re-assessment after every pick.

    Requires the construction context (assessor, database, forecast, and
    the feature's reset delta) because re-assessment replays the assessment
    machinery; the :class:`~repro.tuning.tuner.Tuner` wires this up when
    given a factory, or construct it directly as shown in the ablation
    bench ``benchmarks/bench_a2_reassessment.py``.

    Only ungrouped (optional) candidates are supported — re-assessment
    semantics for required exclusion groups (encodings, placements) would
    need per-group baselines; those features gain little from it because
    their candidates do not overlap.
    """

    name = "greedy-reassess"

    def __init__(
        self,
        assessor: Assessor,
        db: Database,
        forecast: Forecast,
        reset_delta: ConfigurationDelta | None = None,
        max_picks: int | None = None,
    ) -> None:
        if not assessor.supports_reassessment:
            raise SelectionError(
                f"assessor {type(assessor).__name__} does not support "
                "re-assessment"
            )
        self._assessor = assessor
        self._db = db
        self._forecast = forecast
        self._reset_delta = reset_delta or ConfigurationDelta([])
        self._max_picks = max_picks

    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        if any(a.candidate.group_required for a in assessments):
            raise SelectionError(
                "ReassessingGreedySelector does not support required "
                "exclusion groups; use it for index selection"
            )
        score = score_fn or default_score_fn(
            probabilities, reconfiguration_weight
        )
        remaining = list(assessments)
        chosen: list[Assessment] = []
        chosen_actions: list = []
        resources = list(budgets)

        def fits(assessment: Assessment) -> bool:
            usage = resource_usage(
                assessments, set(), resources
            )  # fresh dict of zeros
            for a in chosen:
                for r in resources:
                    usage[r] += a.permanent_cost(r)
            for r in resources:
                usage[r] += assessment.permanent_cost(r)
            return not budget_violations(usage, budgets)

        picks_left = self._max_picks or len(assessments)
        while remaining and picks_left > 0:
            best = max(remaining, key=score)
            if score(best) <= 0:
                break
            if not fits(best):
                remaining.remove(best)
                continue
            chosen.append(best)
            chosen_actions.extend(best.candidate.actions())
            remaining = [a for a in remaining if a is not best]
            picks_left -= 1
            if not remaining:
                break
            # re-assess the survivors with reset + chosen applied, so
            # overlap with already-chosen candidates is priced away
            context = ConfigurationDelta(
                list(self._reset_delta.actions) + list(chosen_actions)
            )
            remaining = self._assessor.assess(
                [a.candidate for a in remaining],
                self._db,
                self._forecast,
                context,
            )
        return chosen
