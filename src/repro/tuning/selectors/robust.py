"""Robust and risk-averse selection.

"Selectors that act risk-averse are a good choice for scenarios in which
stable performance in most cases is preferred over best performance in the
expected case (cf. CliffGuard [22]). Criteria based on mean-variance
optimization, utility functions, value at risk, and worst-case
considerations can be used" (Section II-D.c).

Implemented as a scoring wrapper: the per-candidate scenario desirabilities
are collapsed by a risk criterion into a single robust score, and any base
selector (greedy, optimal, genetic) performs the combinatorial search under
that score.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import SelectionError
from repro.tuning.assessment import Assessment
from repro.tuning.selectors.base import ScoreFn, Selector

WORST_CASE = "worst_case"
MEAN_VARIANCE = "mean_variance"
VALUE_AT_RISK = "value_at_risk"
UTILITY = "utility"

CRITERIA = (WORST_CASE, MEAN_VARIANCE, VALUE_AT_RISK, UTILITY)


def value_at_risk(
    desirability: Mapping[str, float],
    probabilities: Mapping[str, float],
    alpha: float,
) -> float:
    """The α-quantile of the desirability distribution (lower tail).

    With α = 0.05 this is the benefit the candidate delivers in all but the
    worst 5% of scenario mass — the classic VaR reading.
    """
    outcomes = sorted(
        (value, probabilities.get(name, 0.0))
        for name, value in desirability.items()
    )
    cumulative = 0.0
    for value, probability in outcomes:
        cumulative += probability
        if cumulative >= alpha - 1e-12:
            return value
    return outcomes[-1][0] if outcomes else 0.0


def exponential_utility(benefit_ms: float, risk_tolerance_ms: float) -> float:
    """CARA utility, scaled so small benefits stay approximately linear."""
    return risk_tolerance_ms * (1.0 - math.exp(-benefit_ms / risk_tolerance_ms))


class RobustSelector(Selector):
    """Risk-criterion scoring on top of a base selector."""

    name = "robust"

    def __init__(
        self,
        base: Selector,
        criterion: str = WORST_CASE,
        risk_aversion: float = 1.0,
        alpha: float = 0.1,
        risk_tolerance_ms: float = 50.0,
    ) -> None:
        if criterion not in CRITERIA:
            raise SelectionError(
                f"unknown robustness criterion {criterion!r}; "
                f"expected one of {CRITERIA}"
            )
        if not 0.0 < alpha <= 1.0:
            raise SelectionError("alpha must be in (0, 1]")
        if risk_tolerance_ms <= 0:
            raise SelectionError("risk_tolerance_ms must be positive")
        self._base = base
        self._criterion = criterion
        self._risk_aversion = risk_aversion
        self._alpha = alpha
        self._risk_tolerance_ms = risk_tolerance_ms
        self.name = f"robust-{criterion}"

    def robust_score_fn(
        self,
        probabilities: Mapping[str, float],
        reconfiguration_weight: float,
    ) -> ScoreFn:
        def score(a: Assessment) -> float:
            if self._criterion == WORST_CASE:
                core = a.worst_case()
            elif self._criterion == MEAN_VARIANCE:
                core = a.expected(probabilities) - self._risk_aversion * a.std(
                    probabilities
                )
            elif self._criterion == VALUE_AT_RISK:
                core = value_at_risk(
                    a.desirability, probabilities, self._alpha
                )
            else:  # UTILITY
                core = sum(
                    probabilities.get(name, 0.0)
                    * exponential_utility(value, self._risk_tolerance_ms)
                    for name, value in a.desirability.items()
                )
            return core - reconfiguration_weight * a.one_time_cost_ms

        return score

    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        chosen_score = score_fn or self.robust_score_fn(
            probabilities, reconfiguration_weight
        )
        return self._base.select(
            assessments,
            budgets,
            probabilities,
            reconfiguration_weight,
            score_fn=chosen_score,
        )
