"""Selectors: greedy, optimal (MILP), genetic, and robust/risk-averse."""

from repro.tuning.selectors.base import (
    ScoreFn,
    Selector,
    budget_violations,
    default_score_fn,
    group_members,
    resource_usage,
    validate_selection,
)
from repro.tuning.selectors.genetic import GeneticSelector
from repro.tuning.selectors.greedy import GreedySelector
from repro.tuning.selectors.optimal import OptimalSelector
from repro.tuning.selectors.reassessing import ReassessingGreedySelector
from repro.tuning.selectors.robust import (
    CRITERIA,
    MEAN_VARIANCE,
    UTILITY,
    VALUE_AT_RISK,
    WORST_CASE,
    RobustSelector,
    exponential_utility,
    value_at_risk,
)

__all__ = [
    "CRITERIA",
    "GeneticSelector",
    "GreedySelector",
    "MEAN_VARIANCE",
    "OptimalSelector",
    "ReassessingGreedySelector",
    "RobustSelector",
    "ScoreFn",
    "Selector",
    "UTILITY",
    "VALUE_AT_RISK",
    "WORST_CASE",
    "budget_violations",
    "default_score_fn",
    "exponential_utility",
    "group_members",
    "resource_usage",
    "validate_selection",
    "value_at_risk",
]
