"""The genetic selector.

"These algorithms are based on the biological principles of mutation,
selection, and crossover. Genetic algorithms (e.g., for index selection
Kratica et al. [21]) can be applied when the search space is too large to
find optimal solutions. They usually find close-to-optimal solutions in
relatively short amounts of time" (Section II-D.c).

Genome layout: one integer gene per required group (which member is
chosen) plus one bit per ungrouped/optional candidate. Budget violations
are penalised proportionally to the excess, so evolution is pushed toward
feasibility; the best *feasible* individual ever seen is returned.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import SelectionError
from repro.tuning.assessment import Assessment
from repro.tuning.selectors.base import (
    ScoreFn,
    Selector,
    budget_violations,
    default_score_fn,
    group_members,
    resource_usage,
)
from repro.util.rng import derive_rng


@dataclass
class _Problem:
    assessments: list[Assessment]
    scores: list[float]
    budgets: Mapping[str, float]
    #: indices per required group, in stable order
    group_slots: list[list[int]]
    #: indices of candidates represented as independent bits
    bit_slots: list[int]

    def decode(self, genome: np.ndarray) -> set[int]:
        chosen: set[int] = set()
        taken_groups: set[str] = set()
        for slot, members in enumerate(self.group_slots):
            chosen.add(members[int(genome[slot]) % len(members)])
        offset = len(self.group_slots)
        for bit, index in enumerate(self.bit_slots):
            if genome[offset + bit] < 0.5:
                continue
            group = self.assessments[index].candidate.group
            if group is not None:
                if group in taken_groups:
                    continue
                taken_groups.add(group)
            chosen.add(index)
        return chosen

    def fitness(self, chosen: set[int], penalty_scale: float) -> float:
        total = sum(self.scores[i] for i in chosen)
        usage = resource_usage(self.assessments, chosen, list(self.budgets))
        for resource, excess in budget_violations(usage, self.budgets).items():
            limit = abs(self.budgets[resource]) + 1.0
            total -= penalty_scale * (1.0 + excess / limit)
        return total

    def is_feasible(self, chosen: set[int]) -> bool:
        usage = resource_usage(self.assessments, chosen, list(self.budgets))
        return not budget_violations(usage, self.budgets)


class GeneticSelector(Selector):
    """Evolutionary selection with penalty-driven feasibility."""

    name = "genetic"

    def __init__(
        self,
        population_size: int = 40,
        generations: int = 60,
        mutation_rate: float = 0.08,
        tournament_size: int = 3,
        elite: int = 2,
        seed: int = 0,
    ) -> None:
        if population_size < 4:
            raise SelectionError("population_size must be at least 4")
        self._population_size = population_size
        self._generations = generations
        self._mutation_rate = mutation_rate
        self._tournament_size = tournament_size
        self._elite = elite
        self._seed = seed

    def _random_genome(
        self, problem: _Problem, rng: np.random.Generator
    ) -> np.ndarray:
        genes = []
        for members in problem.group_slots:
            genes.append(float(rng.integers(len(members))))
        for _ in problem.bit_slots:
            genes.append(float(rng.random() < 0.3))
        return np.array(genes)

    def _mutate(
        self, genome: np.ndarray, problem: _Problem, rng: np.random.Generator
    ) -> np.ndarray:
        child = genome.copy()
        for slot, members in enumerate(problem.group_slots):
            if rng.random() < self._mutation_rate:
                child[slot] = float(rng.integers(len(members)))
        offset = len(problem.group_slots)
        for bit in range(len(problem.bit_slots)):
            if rng.random() < self._mutation_rate:
                child[offset + bit] = 1.0 - child[offset + bit]
        return child

    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        if not assessments:
            return []
        score = score_fn or default_score_fn(
            probabilities, reconfiguration_weight
        )
        scores = [score(a) for a in assessments]
        groups, required = group_members(assessments)
        group_slots = [groups[g] for g in sorted(required)]
        in_required = {i for g in required for i in groups[g]}
        bit_slots = [i for i in range(len(assessments)) if i not in in_required]
        problem = _Problem(assessments, scores, budgets, group_slots, bit_slots)
        penalty_scale = max((abs(s) for s in scores), default=1.0) * max(
            len(assessments), 1
        )

        rng = derive_rng(self._seed, "genetic-selector")
        population = [
            self._random_genome(problem, rng)
            for _ in range(self._population_size)
        ]
        best_feasible: tuple[float, set[int]] | None = None

        def evaluate(genome: np.ndarray) -> float:
            nonlocal best_feasible
            chosen = problem.decode(genome)
            fitness = problem.fitness(chosen, penalty_scale)
            if problem.is_feasible(chosen):
                value = sum(scores[i] for i in chosen)
                if best_feasible is None or value > best_feasible[0]:
                    best_feasible = (value, chosen)
            return fitness

        fitnesses = [evaluate(g) for g in population]
        for _generation in range(self._generations):
            order = np.argsort(fitnesses)[::-1]
            next_population = [population[i].copy() for i in order[: self._elite]]
            while len(next_population) < self._population_size:
                picks = rng.integers(0, len(population), self._tournament_size)
                parent_a = population[max(picks, key=lambda i: fitnesses[i])]
                picks = rng.integers(0, len(population), self._tournament_size)
                parent_b = population[max(picks, key=lambda i: fitnesses[i])]
                mask = rng.random(len(parent_a)) < 0.5
                child = np.where(mask, parent_a, parent_b)
                next_population.append(self._mutate(child, problem, rng))
            population = next_population
            fitnesses = [evaluate(g) for g in population]

        if best_feasible is None:
            raise SelectionError(
                "genetic search found no feasible selection within "
                f"{self._generations} generations"
            )
        return [assessments[i] for i in sorted(best_feasible[1])]
