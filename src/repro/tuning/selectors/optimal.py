"""The optimal selector: an exact 0/1 program solved by an off-the-shelf
MILP solver.

"Optimal selectors find optimal configurations (e.g., Dash et al. [19]) …
usually based on off-the-shelf solvers that are heavily optimized for such
a task. Optimal selectors might lead to long runtimes" (Section II-D.c).
The model is a multi-dimensional knapsack with generalized upper bound
(group) constraints, solved by HiGHS through :func:`scipy.optimize.milp`.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from scipy.optimize import LinearConstraint, milp

from repro.errors import SelectionError
from repro.tuning.assessment import Assessment
from repro.tuning.selectors.base import (
    ScoreFn,
    Selector,
    default_score_fn,
    group_members,
)


class OptimalSelector(Selector):
    """Exact selection via mixed-integer linear programming."""

    name = "optimal"

    def __init__(self, time_limit_s: float | None = None) -> None:
        self._time_limit_s = time_limit_s

    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        if not assessments:
            return []
        score = score_fn or default_score_fn(
            probabilities, reconfiguration_weight
        )
        n = len(assessments)
        scores = np.array([score(a) for a in assessments])

        constraints: list[LinearConstraint] = []
        for resource, limit in budgets.items():
            coefficients = np.array(
                [a.permanent_cost(resource) for a in assessments]
            )
            if np.any(coefficients != 0) or limit < 0:
                constraints.append(
                    LinearConstraint(coefficients, -np.inf, limit)
                )

        groups, required = group_members(assessments)
        for group, members in groups.items():
            row = np.zeros(n)
            row[members] = 1.0
            lower = 1.0 if group in required else 0.0
            constraints.append(LinearConstraint(row, lower, 1.0))

        options = {}
        if self._time_limit_s is not None:
            options["time_limit"] = self._time_limit_s
        result = milp(
            c=-scores,  # milp minimises
            integrality=np.ones(n),
            bounds=(0, 1),
            constraints=constraints or None,
            options=options or None,
        )
        if not result.success or result.x is None:
            raise SelectionError(
                f"MILP selection failed: {result.message}"
            )
        chosen = {i for i in range(n) if result.x[i] > 0.5}

        # Unselected positive-score free candidates can only happen through
        # solver tolerance; selected negative-score ungrouped candidates
        # cannot improve the objective — drop them defensively.
        for i in list(chosen):
            a = assessments[i]
            if (
                a.candidate.group is None
                and scores[i] < 0
                and all(a.permanent_cost(r) >= 0 for r in budgets)
            ):
                chosen.discard(i)
        return [assessments[i] for i in sorted(chosen)]
