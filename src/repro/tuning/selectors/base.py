"""Selector interface and shared selection mechanics.

"A selector chooses candidates based on the previous assessments and
specified constraints, e.g., a memory budget for indexes" (Section II-D.c).

The selection problem all selectors solve:

- maximise the summed score of chosen assessments (default score: expected
  desirability minus weighted reconfiguration cost);
- subject to resource budgets: the summed permanent costs per resource must
  not exceed the given (possibly negative) budget — budgets are *relative
  to the feature's reset baseline*, matching how assessors measure costs;
- subject to exclusion groups: at most one member per group, exactly one
  for required groups.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping

from repro.tuning.assessment import Assessment

ScoreFn = Callable[[Assessment], float]


def default_score_fn(
    probabilities: Mapping[str, float], reconfiguration_weight: float
) -> ScoreFn:
    return lambda a: a.net_benefit(probabilities, reconfiguration_weight)


def group_members(
    assessments: list[Assessment],
) -> tuple[dict[str, list[int]], set[str]]:
    """Map group name → member indices; also the set of required groups."""
    groups: dict[str, list[int]] = {}
    required: set[str] = set()
    for i, assessment in enumerate(assessments):
        group = assessment.candidate.group
        if group is None:
            continue
        groups.setdefault(group, []).append(i)
        if assessment.candidate.group_required:
            required.add(group)
    return groups, required


def resource_usage(
    assessments: list[Assessment], chosen: set[int], resources: list[str]
) -> dict[str, float]:
    usage = {resource: 0.0 for resource in resources}
    for i in chosen:
        for resource in resources:
            usage[resource] += assessments[i].permanent_cost(resource)
    return usage


def budget_violations(
    usage: Mapping[str, float], budgets: Mapping[str, float]
) -> dict[str, float]:
    """Resource → excess amount for every violated budget."""
    return {
        resource: usage[resource] - limit
        for resource, limit in budgets.items()
        if usage.get(resource, 0.0) > limit + 1e-6
    }


def validate_selection(
    assessments: list[Assessment],
    chosen: set[int],
    budgets: Mapping[str, float],
) -> list[str]:
    """Violation strings for a final selection (empty when feasible)."""
    problems: list[str] = []
    usage = resource_usage(assessments, chosen, list(budgets))
    for resource, excess in budget_violations(usage, budgets).items():
        problems.append(f"{resource} over budget by {excess:.0f}")
    groups, required = group_members(assessments)
    for group, members in groups.items():
        count = sum(1 for i in members if i in chosen)
        if count > 1:
            problems.append(f"group {group!r} has {count} selected members")
        if group in required and count == 0:
            problems.append(f"required group {group!r} has no selected member")
    return problems


class Selector(ABC):
    """Chooses a feasible subset of assessed candidates."""

    name: str = "selector"

    @abstractmethod
    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        """Return the chosen assessments (a feasible subset)."""
