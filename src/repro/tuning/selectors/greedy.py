"""The greedy selector: desirability per cost, then budget repair.

"The greedy selector chooses candidates based on the desirability per cost,
choosing the candidates with the highest ratio first and proceeding until
the constraint is violated. The strength of the greedy selector is its
short runtime" (Section II-D.c, cf. [16], [17] for indexes and [18] for
data tiering).

Required exclusion groups (encodings, placements, knobs) are seeded with
their best-scoring member; if budgets are then violated — e.g. a DRAM
budget smaller than the all-DRAM placement — a repair loop downgrades the
group choices with the smallest score loss per byte freed, which is exactly
the greedy eviction strategy of tiering systems.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SelectionError
from repro.tuning.assessment import Assessment
from repro.tuning.selectors.base import (
    ScoreFn,
    Selector,
    budget_violations,
    default_score_fn,
    group_members,
    resource_usage,
)


class GreedySelector(Selector):
    """Ratio-greedy selection with group seeding and budget repair."""

    name = "greedy"

    def _fits(
        self,
        assessment: Assessment,
        usage: Mapping[str, float],
        budgets: Mapping[str, float],
    ) -> bool:
        for resource, limit in budgets.items():
            new_usage = usage.get(resource, 0.0) + assessment.permanent_cost(
                resource
            )
            if new_usage > limit + 1e-6:
                return False
        return True

    def select(
        self,
        assessments: list[Assessment],
        budgets: Mapping[str, float],
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
        score_fn: ScoreFn | None = None,
    ) -> list[Assessment]:
        score = score_fn or default_score_fn(
            probabilities, reconfiguration_weight
        )
        scores = [score(a) for a in assessments]
        groups, required = group_members(assessments)
        resources = list(budgets)
        chosen: set[int] = set()
        group_of: dict[str, int] = {}

        # 1. Seed every required group with its best-scoring member.
        for group in sorted(required):
            best = max(groups[group], key=lambda i: scores[i])
            chosen.add(best)
            group_of[group] = best

        # 2. Forward pass over ungrouped/optional candidates by ratio.
        optional = [
            i
            for i, a in enumerate(assessments)
            if a.candidate.group is None or not a.candidate.group_required
        ]

        def ratio_key(i: int) -> tuple[int, float]:
            cost = sum(
                max(assessments[i].permanent_cost(r), 0.0) for r in resources
            )
            if cost <= 0:
                return (0, -scores[i])  # free candidates first, best score
            return (1, -scores[i] / cost)

        usage = resource_usage(assessments, chosen, resources)
        for i in sorted(optional, key=ratio_key):
            if scores[i] <= 0:
                continue
            group = assessments[i].candidate.group
            if group is not None and group in group_of:
                continue
            if not self._fits(assessments[i], usage, budgets):
                continue
            chosen.add(i)
            if group is not None:
                group_of[group] = i
            for r in resources:
                usage[r] += assessments[i].permanent_cost(r)

        # 3. Repair: downgrade group choices / drop optional picks until
        #    every budget holds.
        for _ in range(len(assessments) * 2 + 1):
            usage = resource_usage(assessments, chosen, resources)
            violations = budget_violations(usage, budgets)
            if not violations:
                break
            best_move: tuple[float, str, int, int | None] | None = None
            for group in required:
                current = group_of[group]
                for alternative in groups[group]:
                    if alternative == current:
                        continue
                    freed = sum(
                        min(
                            excess,
                            assessments[current].permanent_cost(r)
                            - assessments[alternative].permanent_cost(r),
                        )
                        / excess
                        for r, excess in violations.items()
                    )
                    if freed <= 1e-12:
                        continue
                    loss = scores[current] - scores[alternative]
                    move = (loss / freed, group, current, alternative)
                    if best_move is None or move[0] < best_move[0]:
                        best_move = move
            for i in list(chosen):
                candidate = assessments[i].candidate
                if candidate.group in required:
                    continue
                freed = sum(
                    min(excess, assessments[i].permanent_cost(r)) / excess
                    for r, excess in violations.items()
                )
                if freed <= 1e-12:
                    continue
                move = (scores[i] / freed, "", i, None)
                if best_move is None or move[0] < best_move[0]:
                    best_move = move
            if best_move is None:
                raise SelectionError(
                    "greedy repair cannot satisfy budgets: "
                    + ", ".join(
                        f"{r} over by {e:.0f}" for r, e in violations.items()
                    )
                )
            _penalty, group, removed, added = best_move
            chosen.discard(removed)
            if added is not None:
                chosen.add(added)
                group_of[group] = added
            else:
                candidate_group = assessments[removed].candidate.group
                if candidate_group is not None:
                    group_of.pop(candidate_group, None)
        else:
            raise SelectionError("greedy repair did not converge")

        return [assessments[i] for i in sorted(chosen)]
