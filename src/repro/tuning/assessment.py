"""Assessments: the assessor's verdict on one candidate.

"Each candidate is assigned a positive or negative desirability indicating
its impact … for a forecast scenario. The system assigns different
desirabilities to the same candidate for different forecast scenarios …
Besides, the assessor assigns an associated confidence … and a cost to each
assessment. The cost component is twofold: permanent costs (e.g., the
memory consumption of an index) and one-time costs for applying the
configuration" (Section II-D.b).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.tuning.candidate import Candidate


@dataclass
class Assessment:
    """Desirability per scenario, confidence, and costs for one candidate."""

    candidate: Candidate
    #: scenario name → benefit in ms of workload cost over the forecast
    #: horizon (positive = improvement, negative = regression)
    desirability: dict[str, float]
    #: certainty of the assessment, in [0, 1]
    confidence: float = 1.0
    #: resource → amount permanently consumed while the candidate is active
    #: (e.g. index memory bytes); negative amounts free the resource
    permanent_costs: dict[str, float] = field(default_factory=dict)
    #: one-time reconfiguration cost of applying the candidate now
    one_time_cost_ms: float = 0.0

    def expected(self, probabilities: Mapping[str, float]) -> float:
        """Probability-weighted desirability."""
        return sum(
            probabilities.get(name, 0.0) * value
            for name, value in self.desirability.items()
        )

    def worst_case(self) -> float:
        """Minimum desirability over all scenarios."""
        return min(self.desirability.values()) if self.desirability else 0.0

    def std(self, probabilities: Mapping[str, float]) -> float:
        """Probability-weighted standard deviation of desirability."""
        mean = self.expected(probabilities)
        variance = sum(
            probabilities.get(name, 0.0) * (value - mean) ** 2
            for name, value in self.desirability.items()
        )
        return math.sqrt(max(variance, 0.0))

    def net_benefit(
        self,
        probabilities: Mapping[str, float],
        reconfiguration_weight: float = 0.0,
    ) -> float:
        """Expected desirability minus weighted reconfiguration cost.

        The weight expresses how heavily one-time costs count against the
        recurring benefit; 0 ignores them, 1 treats one application as
        costly as one forecast horizon of benefit (Section II-D.b's
        mechanism for finding minimally invasive changes).
        """
        return (
            self.expected(probabilities)
            - reconfiguration_weight * self.one_time_cost_ms
        )

    def permanent_cost(self, resource: str) -> float:
        return self.permanent_costs.get(resource, 0.0)


def scenario_benefits(
    scenarios: Sequence,
    baseline_costs: Mapping[str, float],
    new_costs: Mapping[str, float],
) -> dict[str, float]:
    """Per-scenario desirability from before/after template costs.

    For each scenario the benefit is the frequency-weighted cost saving
    over the templates the assessor priced (positive-frequency templates
    missing from ``baseline_costs`` were out of the assessor's scope and
    contribute nothing). Shared by the cost-model and sort-benefit
    assessors so both fold benefits identically.
    """
    benefits: dict[str, float] = {}
    for scenario in scenarios:
        benefit = 0.0
        for key, frequency in scenario.frequencies.items():
            if frequency <= 0 or key not in baseline_costs:
                continue
            benefit += frequency * (baseline_costs[key] - new_costs[key])
        benefits[scenario.name] = benefit
    return benefits
