"""Encoding candidate enumeration.

For every workload-relevant column, one candidate per supported encoding
(including UNENCODED, the reset state) forms a required exclusion group:
the selector must pick exactly one encoding per column (or per chunk group
when chunk granularity is enabled).
"""

from __future__ import annotations

from repro.dbms.database import Database
from repro.dbms.segments import supported_encodings
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, EncodingCandidate
from repro.tuning.enumerators.base import (
    Enumerator,
    predicate_column_usage,
    workload_tables,
)


class EncodingEnumerator(Enumerator):
    """Per-column encoding alternatives as required exclusion groups."""

    def __init__(self, all_columns: bool = False, per_chunk: bool = False) -> None:
        """``all_columns`` enumerates every column of workload tables, not
        just predicate/aggregate columns (more memory wins, more work)."""
        self._all_columns = all_columns
        self._per_chunk = per_chunk

    def relevant_columns(
        self, db: Database, forecast: Forecast
    ) -> list[tuple[str, str]]:
        tables = workload_tables(forecast)
        if self._all_columns:
            columns = []
            for table_name in sorted(tables):
                if not db.catalog.has_table(table_name):
                    continue
                for column in db.table(table_name).schema.column_names:
                    columns.append((table_name, column))
            return columns
        usage = predicate_column_usage(forecast)
        columns = sorted(usage)
        # aggregate input columns are decoded in bulk, so they matter too
        for query in forecast.sample_queries.values():
            if query.aggregate_column is not None:
                slot = (query.table, query.aggregate_column)
                if slot not in columns:
                    columns.append(slot)
        return columns

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        candidates: list[Candidate] = []
        for table_name, column in self.relevant_columns(db, forecast):
            if not db.catalog.has_table(table_name):
                continue
            table = db.table(table_name)
            if not table.schema.has_column(column):
                continue
            data_type = table.schema.data_type(column)
            encodings = supported_encodings(data_type)
            if self._per_chunk:
                for chunk in table.chunks():
                    for encoding in encodings:
                        candidates.append(
                            EncodingCandidate(
                                table_name, column, encoding, (chunk.chunk_id,)
                            )
                        )
            else:
                for encoding in encodings:
                    candidates.append(
                        EncodingCandidate(table_name, column, encoding, None)
                    )
        return candidates
