"""Restrictive enumeration: cap a candidate set by a cheap heuristic score.

"Some enumeration algorithms restrict the candidate set based on heuristics
while others consider all available candidates. The framework allows to
switch between different enumerators or fall back to restrictive
enumerators when necessary" (Section II-D.a). The wrapper scores candidates
without any cost estimation — pure frequency/size arithmetic — and keeps
the top ``max_candidates``, never dropping members of required groups.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, IndexCandidate
from repro.tuning.enumerators.base import (
    Enumerator,
    predicate_column_usage,
)

Scorer = Callable[[Candidate, Database, Forecast], float]


def frequency_score(
    candidate: Candidate, db: Database, forecast: Forecast
) -> float:
    """Default heuristic: expected predicate frequency hitting the candidate.

    Index candidates score the usage of their leading column (equality use
    weighted double — that is what a sorted index serves best). Non-index
    candidates score neutrally, since their groups are preserved anyway.
    """
    del db
    if isinstance(candidate, IndexCandidate):
        usage = predicate_column_usage(forecast)
        slot = usage.get((candidate.table, candidate.columns[0]))
        if slot is None:
            return 0.0
        return 2.0 * slot.eq_frequency + slot.range_frequency
    return 0.0


class RestrictiveEnumerator(Enumerator):
    """Wraps another enumerator and keeps only the best-scoring candidates."""

    def __init__(
        self,
        inner: Enumerator,
        max_candidates: int,
        scorer: Scorer = frequency_score,
    ) -> None:
        if max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")
        self._inner = inner
        self._max_candidates = max_candidates
        self._scorer = scorer

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        all_candidates = self._inner.candidates(db, forecast)
        required = [c for c in all_candidates if c.group_required]
        optional = [c for c in all_candidates if not c.group_required]
        if len(optional) <= self._max_candidates:
            return required + optional
        scored = sorted(
            optional,
            key=lambda c: self._scorer(c, db, forecast),
            reverse=True,
        )
        return required + scored[: self._max_candidates]
