"""Candidate enumerators for all tuning features."""

from repro.tuning.enumerators.base import (
    ColumnUsage,
    Enumerator,
    predicate_column_usage,
    template_predicate_columns,
    workload_tables,
)
from repro.tuning.enumerators.encoding_enum import EncodingEnumerator
from repro.tuning.enumerators.heuristic import (
    RestrictiveEnumerator,
    frequency_score,
)
from repro.tuning.enumerators.index_enum import IndexEnumerator
from repro.tuning.enumerators.knob_enum import KnobEnumerator
from repro.tuning.enumerators.placement_enum import PlacementEnumerator
from repro.tuning.enumerators.sort_enum import SortOrderEnumerator

__all__ = [
    "ColumnUsage",
    "EncodingEnumerator",
    "Enumerator",
    "IndexEnumerator",
    "KnobEnumerator",
    "PlacementEnumerator",
    "RestrictiveEnumerator",
    "SortOrderEnumerator",
    "frequency_score",
    "predicate_column_usage",
    "template_predicate_columns",
    "workload_tables",
]
