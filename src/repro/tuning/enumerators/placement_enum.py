"""Data placement candidate enumeration.

One required exclusion group per chunk, one candidate per storage tier:
the selector assigns every chunk of the workload tables to exactly one
tier, trading DRAM budget against access latency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dbms.database import Database
from repro.dbms.storage_tiers import StorageTier
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, PlacementCandidate
from repro.tuning.enumerators.base import Enumerator, workload_tables


class PlacementEnumerator(Enumerator):
    """Chunk × tier alternatives as required exclusion groups."""

    def __init__(self, tiers: Sequence[StorageTier] | None = None) -> None:
        self._tiers = tuple(tiers) if tiers is not None else tuple(StorageTier)
        if not self._tiers:
            raise ValueError("at least one tier is required")

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        candidates: list[Candidate] = []
        for table_name in sorted(workload_tables(forecast)):
            if not db.catalog.has_table(table_name):
                continue
            for chunk in db.table(table_name).chunks():
                for tier in self._tiers:
                    candidates.append(
                        PlacementCandidate(table_name, chunk.chunk_id, tier)
                    )
        return candidates
