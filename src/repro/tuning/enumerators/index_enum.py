"""Index candidate enumeration.

Syntax-driven enumeration in the tradition of AutoAdmin [12]: candidates
are single predicate columns plus two-column composites that co-occur in a
template (equality column leading, since the index supports equality on a
prefix plus a range on the next column). Existing indexes on workload
tables are re-enumerated so selection-from-scratch semantics can decide to
keep or drop them.
"""

from __future__ import annotations

from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, IndexCandidate
from repro.tuning.enumerators.base import (
    Enumerator,
    template_predicate_columns,
    workload_tables,
)


class IndexEnumerator(Enumerator):
    """All syntactically relevant index candidates."""

    def __init__(self, max_width: int = 2, per_chunk: bool = False) -> None:
        if max_width < 1:
            raise ValueError("max_width must be at least 1")
        self._max_width = max_width
        self._per_chunk = per_chunk

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        keys: set[tuple[str, tuple[str, ...]]] = set()
        for _freq, table, eq_cols, range_cols in template_predicate_columns(
            forecast
        ):
            for column in eq_cols + range_cols:
                keys.add((table, (column,)))
            if self._max_width >= 2:
                # equality column leading, then another predicate column
                for lead in eq_cols:
                    for follow in eq_cols + range_cols:
                        if follow != lead:
                            keys.add((table, (lead, follow)))

        # keep existing indexes selectable
        for table_name in workload_tables(forecast):
            if not db.catalog.has_table(table_name):
                continue
            for chunk in db.table(table_name).chunks():
                for key in chunk.index_keys():
                    if len(key) <= self._max_width:
                        keys.add((table_name, key))

        candidates: list[Candidate] = []
        for table_name, columns in sorted(keys):
            if not db.catalog.has_table(table_name):
                continue
            if self._per_chunk:
                for chunk in db.table(table_name).chunks():
                    candidates.append(
                        IndexCandidate(table_name, columns, (chunk.chunk_id,))
                    )
            else:
                candidates.append(IndexCandidate(table_name, columns, None))
        return candidates
