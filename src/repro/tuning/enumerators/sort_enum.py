"""Sort-order candidate enumeration.

One candidate per (workload table, predicate column): sorting by a column
groups equal values, which makes run-length encoding effective on it and
shrinks dictionary/index structures — benefits that mostly materialise
*through* the compression feature, making sort order the strongest
dependence generator in the feature set.
"""

from __future__ import annotations

from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, SortOrderCandidate
from repro.tuning.enumerators.base import Enumerator, predicate_column_usage


class SortOrderEnumerator(Enumerator):
    """Sort candidates from the workload's predicate columns."""

    def __init__(self, per_chunk: bool = False, max_columns: int = 4) -> None:
        if max_columns < 1:
            raise ValueError("max_columns must be at least 1")
        self._per_chunk = per_chunk
        self._max_columns = max_columns

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        usage = predicate_column_usage(forecast)
        by_table: dict[str, list[tuple[float, str]]] = {}
        for (table, column), stats in usage.items():
            by_table.setdefault(table, []).append(
                (stats.total_frequency, column)
            )
        candidates: list[Candidate] = []
        for table_name in sorted(by_table):
            if not db.catalog.has_table(table_name):
                continue
            table = db.table(table_name)
            ranked = sorted(by_table[table_name], reverse=True)
            columns = [column for _freq, column in ranked[: self._max_columns]]
            for column in sorted(columns):
                if not table.schema.has_column(column):
                    continue
                if self._per_chunk:
                    for chunk in table.chunks():
                        candidates.append(
                            SortOrderCandidate(
                                table_name, column, (chunk.chunk_id,)
                            )
                        )
                else:
                    candidates.append(
                        SortOrderCandidate(table_name, column, None)
                    )
        return candidates
