"""Knob candidate enumeration.

Knob candidates realise the paper's range form: the knob definition carries
start, end, and smallest interval; the enumerator samples at most
``max_candidates`` evenly spaced settable values (always including the
domain boundaries, the default, and the current value).
"""

from __future__ import annotations

import numpy as np

from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, KnobCandidate
from repro.tuning.enumerators.base import Enumerator


class KnobEnumerator(Enumerator):
    """Evenly spaced values from one knob's stepped range."""

    def __init__(
        self,
        knob_name: str,
        max_candidates: int = 9,
        feature_name: str | None = None,
    ) -> None:
        if max_candidates < 2:
            raise ValueError("max_candidates must be at least 2")
        self._knob_name = knob_name
        self._max_candidates = max_candidates
        self._feature_name = feature_name or f"knob:{knob_name}"

    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        del forecast  # knob candidates do not depend on the workload shape
        knob = db.knobs.definition(self._knob_name)
        domain = knob.domain_values()
        if len(domain) > self._max_candidates:
            picks = np.linspace(0, len(domain) - 1, self._max_candidates)
            values = sorted({domain[int(round(i))] for i in picks})
        else:
            values = list(domain)
        for must_have in (knob.default, db.knobs.get(self._knob_name)):
            if must_have not in values:
                values.append(must_have)
        return [
            KnobCandidate(self._knob_name, value, self._feature_name)
            for value in sorted(values)
        ]
