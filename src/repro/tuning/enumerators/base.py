"""Enumerator interface and workload-introspection helpers.

"An enumerator is responsible for providing a list of Candidates to the
tuning process. The size of the candidate set is typically a significant
contributor to the execution time of optimization algorithms"
(Section II-D.a). Enumerators derive candidates syntactically from the
forecast workload; restrictive variants cap the set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate


class Enumerator(ABC):
    """Produces the candidate set for one tuning run."""

    @abstractmethod
    def candidates(self, db: Database, forecast: Forecast) -> list[Candidate]:
        """Candidates applicable to ``db`` for the forecast workload."""


def workload_tables(forecast: Forecast) -> set[str]:
    """Tables referenced by the forecast's sample queries."""
    return {query.table for query in forecast.sample_queries.values()}


@dataclass(frozen=True)
class ColumnUsage:
    """How a column is used by the forecast workload."""

    table: str
    column: str
    #: expected executions (over the horizon) with an equality predicate
    eq_frequency: float = 0.0
    #: expected executions with a range predicate
    range_frequency: float = 0.0

    @property
    def total_frequency(self) -> float:
        return self.eq_frequency + self.range_frequency


def predicate_column_usage(forecast: Forecast) -> dict[tuple[str, str], ColumnUsage]:
    """Aggregate per-column predicate usage weighted by expected frequency."""
    frequencies = forecast.expected.frequencies
    usage: dict[tuple[str, str], ColumnUsage] = {}
    for key, query in forecast.sample_queries.items():
        frequency = float(frequencies.get(key, 0.0))
        if frequency <= 0:
            continue
        for pred in query.predicates:
            slot = (query.table, pred.column)
            existing = usage.get(slot)
            eq = frequency if pred.op == "=" else 0.0
            rng = frequency if pred.op != "=" else 0.0
            if existing is None:
                usage[slot] = ColumnUsage(query.table, pred.column, eq, rng)
            else:
                usage[slot] = ColumnUsage(
                    query.table,
                    pred.column,
                    existing.eq_frequency + eq,
                    existing.range_frequency + rng,
                )
    return usage


def template_predicate_columns(
    forecast: Forecast,
) -> list[tuple[float, str, list[str], list[str]]]:
    """Per template: (frequency, table, eq columns, range columns)."""
    frequencies = forecast.expected.frequencies
    result = []
    for key, query in forecast.sample_queries.items():
        frequency = float(frequencies.get(key, 0.0))
        if frequency <= 0:
            continue
        eq_cols: list[str] = []
        range_cols: list[str] = []
        for pred in query.predicates:
            target = eq_cols if pred.op == "=" else range_cols
            if pred.column not in target:
                target.append(pred.column)
        result.append((frequency, query.table, eq_cols, range_cols))
    return result
