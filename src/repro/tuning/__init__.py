"""The Tuner component: candidates, assessment, and the pipeline stages."""

from repro.tuning.assessment import Assessment
from repro.tuning.assessors import (
    Assessor,
    BufferPoolAssessor,
    CostModelAssessor,
    LearnedFeedbackAssessor,
)
from repro.tuning.candidate import (
    Candidate,
    EncodingCandidate,
    IndexCandidate,
    KnobCandidate,
    PlacementCandidate,
    SortOrderCandidate,
)
from repro.tuning.enumerators import (
    EncodingEnumerator,
    Enumerator,
    IndexEnumerator,
    KnobEnumerator,
    PlacementEnumerator,
    RestrictiveEnumerator,
    SortOrderEnumerator,
)
from repro.tuning.executors import (
    ApplicationReport,
    ParallelExecutor,
    SequentialExecutor,
    TuningExecutor,
)
from repro.tuning.features import (
    BufferPoolFeature,
    CompressionFeature,
    DataPlacementFeature,
    FeatureTuner,
    IndexSelectionFeature,
    SortOrderFeature,
    standard_features,
)
from repro.tuning.selectors import (
    GeneticSelector,
    GreedySelector,
    OptimalSelector,
    ReassessingGreedySelector,
    RobustSelector,
    Selector,
)
from repro.tuning.tuner import Tuner, TuningResult

__all__ = [
    "ApplicationReport",
    "Assessment",
    "Assessor",
    "BufferPoolAssessor",
    "BufferPoolFeature",
    "Candidate",
    "CompressionFeature",
    "CostModelAssessor",
    "DataPlacementFeature",
    "EncodingCandidate",
    "EncodingEnumerator",
    "Enumerator",
    "FeatureTuner",
    "GeneticSelector",
    "GreedySelector",
    "IndexCandidate",
    "IndexEnumerator",
    "IndexSelectionFeature",
    "KnobCandidate",
    "KnobEnumerator",
    "LearnedFeedbackAssessor",
    "OptimalSelector",
    "ParallelExecutor",
    "PlacementCandidate",
    "PlacementEnumerator",
    "ReassessingGreedySelector",
    "RestrictiveEnumerator",
    "RobustSelector",
    "Selector",
    "SequentialExecutor",
    "SortOrderCandidate",
    "SortOrderEnumerator",
    "SortOrderFeature",
    "Tuner",
    "TuningExecutor",
    "TuningResult",
]
