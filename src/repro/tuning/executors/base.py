"""Tuning executor interface.

"The executor takes care of applying the choices that were selected
previously. There are different application strategies regarding order,
point in time and sequential or parallel application" (Section II-D.d).

Executors are **failure-aware**: an optional
:class:`~repro.faults.injector.FaultInjector` gates every application
attempt, transient failures are retried with capped exponential backoff
in *simulated* time (:class:`~repro.faults.recovery.RetryPolicy`), and a
permanent failure rolls the partial pass back through the inverse
actions collected so far, restoring the pre-pass configuration — and its
config epoch — bit-identically before a
:class:`~repro.errors.TuningAbortedError` propagates. See
docs/robustness.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.configuration.actions import Action
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.errors import ActionError, TuningAbortedError
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RetryPolicy
from repro.kpi.metrics import (
    ACTION_FAILURES,
    ACTION_RETRIES,
    ROLLBACK_ACTIONS,
    ROLLBACKS,
)
from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.spans import Tracer


@dataclass
class ApplicationReport:
    """What a tuning executor did and what it cost.

    Two distinct cost semantics coexist and must not be conflated:

    - **work** (:attr:`total_work_ms`) — the sum of per-action costs.
      This is what resource accounting stores: the database's
      ``total_reconfiguration_ms`` counter, ``ConfigurationRecord
      .reconfiguration_cost_ms``, and the ``reconfiguration_ms`` KPI all
      accumulate work, regardless of execution strategy. Work answers
      "how much reconfiguration effort was spent".
    - **elapsed** (:attr:`elapsed_ms`) — the simulated wall time the
      application occupied, i.e. ``finished_ms - started_ms``. The clock
      advances by elapsed time: per-action for sequential strategies,
      per-batch *maximum* for parallel ones. Elapsed answers "how long
      was the system reconfiguring".

    For :class:`~repro.tuning.executors.sequential.SequentialExecutor`
    the two coincide on a clean pass; for parallel strategies
    ``elapsed_ms ≤ total_work_ms`` while counters still record the full
    work. Failure handling extends the contract: retry backoff advances
    only the clock (:attr:`backoff_ms` is elapsed, not work), while a
    rollback advances both (:attr:`rollback_work_ms` is real effort and
    is *not* included in :attr:`total_work_ms`, which keeps its meaning
    of forward work).
    """

    strategy: str
    action_summaries: list[str] = field(default_factory=list)
    action_costs_ms: list[float] = field(default_factory=list)
    #: simulated wall time the application occupied (finished - started)
    elapsed_ms: float = 0.0
    started_ms: float = 0.0
    finished_ms: float = 0.0
    #: transient-failure retries spent across all actions
    retries: int = 0
    #: simulated wall time spent waiting between retries (clock only)
    backoff_ms: float = 0.0
    #: True when the pass failed permanently and was rolled back
    rolled_back: bool = False
    #: inverse actions applied during rollback
    rollback_actions: int = 0
    #: reconfiguration work spent rolling back (clock and counters)
    rollback_work_ms: float = 0.0
    #: description of the action whose failure aborted the pass
    failed_action: str | None = None
    #: inverse actions of the applied pass, in application order — kept on
    #: a *clean* pass so the commit guard can retain them for probation
    #: (see repro.guard); empty after a rollback consumed them
    inverse_actions: list[Action] = field(default_factory=list)

    @property
    def total_work_ms(self) -> float:
        """Sum of per-action forward costs (≥ elapsed for parallel
        strategies; excludes backoff waits and rollback work).

        This is the quantity recorded by counters and configuration
        records — see the class docstring for the work/elapsed split.
        """
        return sum(self.action_costs_ms)

    @property
    def action_count(self) -> int:
        return len(self.action_summaries)


class TuningExecutor(ABC):
    """Applies a configuration delta to the database.

    Subclasses implement :meth:`execute` on top of the shared failure
    machinery: :meth:`_apply_action` (inject → estimate → apply raw,
    retrying transient faults) and :meth:`_abort` (roll back the
    applied prefix, finalise the report, raise
    :class:`~repro.errors.TuningAbortedError`).
    """

    name: str = "executor"

    def __init__(
        self,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._injector = injector
        self._retry = retry if retry is not None else RetryPolicy()
        if telemetry is not None:
            self._tracer = telemetry.tracer
            registry = telemetry.registry
            # jitter key: concurrent tenants retrying one shared fault
            # must not back off in lockstep (see RetryPolicy.backoff_ms)
            self._retry_key = telemetry.tenant
        else:
            self._tracer = Tracer(enabled=False)
            registry = MetricRegistry()
            self._retry_key = ""
        self._retries_counter = registry.counter(ACTION_RETRIES)
        self._failures_counter = registry.counter(ACTION_FAILURES)
        self._rollbacks_counter = registry.counter(ROLLBACKS)
        self._rollback_actions_counter = registry.counter(ROLLBACK_ACTIONS)

    @property
    def injector(self) -> FaultInjector | None:
        return self._injector

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._retry

    @abstractmethod
    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        """Apply all actions of ``delta``.

        Raises :class:`~repro.errors.TuningAbortedError` when an action
        fails permanently; by then every previously applied action of
        this call has been rolled back and the pre-call configuration
        (including its config epoch) is restored.
        """

    # ------------------------------------------------------------------
    # shared failure machinery

    @staticmethod
    def snapshot(db: Database) -> tuple[int, tuple[int, int]]:
        """Pre-pass state needed for an exact rollback: the config epoch
        and the buffer-pool fingerprint proving the restore was exact.

        Public because the commit guard captures the same snapshot
        before a pass it may later have to undo (see :meth:`rollback`).
        """
        pool = db.executor.buffer_pool
        return db.config_epoch, (pool.entry_count, pool.used_bytes)

    def _apply_action(
        self,
        action: Action,
        db: Database,
        report: ApplicationReport,
    ) -> tuple[float, list[Action]]:
        """Apply one action through the raw path, retrying transients.

        Returns ``(cost_ms, inverse_actions)``. Cost is the pre-apply
        estimate plus any injected latency spike — estimated *before*
        the mutation, since estimates are state-dependent. Each retry
        advances only the simulated clock by the policy backoff (waiting
        is elapsed time, not reconfiguration work) and rolls the
        injector dice again. Raises :class:`~repro.errors.ActionError`
        once retries are exhausted or the fault is permanent.
        """
        attempt = 0
        while True:
            try:
                extra_ms = (
                    self._injector.before_apply(action)
                    if self._injector is not None
                    else 0.0
                )
                cost = action.estimate_cost_ms(db) + extra_ms
                inverse = action.apply_raw(db)
                return cost, inverse
            except ActionError as exc:
                self._failures_counter.inc()
                if not exc.transient or attempt >= self._retry.max_retries:
                    raise
                backoff = self._retry.backoff_ms(attempt, self._retry_key)
                db.clock.advance(backoff)
                report.retries += 1
                report.backoff_ms += backoff
                self._retries_counter.inc()
                attempt += 1

    def _rollback(
        self,
        db: Database,
        inverse_stack: list[Action],
        saved: tuple[int, tuple[int, int]],
        report: ApplicationReport,
    ) -> None:
        """Undo the applied prefix via its inverse actions (LIFO).

        Rollback is real reconfiguration effort: the clock and the
        database counters both advance by the inverse-action work. The
        config epoch is restored to its pre-pass value when the
        buffer-pool fingerprint proves the restore was exact (raw
        actions only ever *remove* pool entries), so what-if cache
        entries for the pre-pass configuration stay valid.
        """
        saved_epoch, saved_pool = saved
        with self._tracer.span("rollback", actions=len(inverse_stack)):
            work = 0.0
            for inverse in reversed(inverse_stack):
                work += inverse.estimate_cost_ms(db)
                inverse.apply_raw(db)
            pool = db.executor.buffer_pool
            if (pool.entry_count, pool.used_bytes) == saved_pool:
                db.restore_config_epoch(saved_epoch)
            else:
                db.bump_config_epoch()
            db.clock.advance(work)
            if inverse_stack:
                db.counters.reconfigurations += len(inverse_stack)
                db.counters.total_reconfiguration_ms += work
        report.rolled_back = True
        report.rollback_actions = len(inverse_stack)
        report.rollback_work_ms = work
        self._rollbacks_counter.inc()
        if inverse_stack:
            self._rollback_actions_counter.inc(len(inverse_stack))

    def rollback(
        self,
        db: Database,
        inverse_actions: list[Action],
        saved: tuple[int, tuple[int, int]],
        strategy: str = "guard_rollback",
    ) -> ApplicationReport:
        """Public rollback entry point for *post-commit* rollbacks.

        The commit guard retains a clean pass's inverse actions and its
        pre-pass snapshot (see :meth:`_snapshot`); when the pass later
        turns out to regress runtime KPIs, the organizer undoes it here —
        through the exact machinery a failed application already uses,
        so clock/counter accounting and the config-epoch restore rules
        are identical. Returns the finalised report of the rollback.
        """
        report = ApplicationReport(strategy=strategy, started_ms=db.clock.now_ms)
        self._rollback(db, list(inverse_actions), saved, report)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        return report

    def _abort(
        self,
        db: Database,
        inverse_stack: list[Action],
        saved: tuple[int, tuple[int, int]],
        report: ApplicationReport,
        action: Action,
        exc: Exception,
    ) -> None:
        """Roll back, finalise the report, and re-raise.

        Injected (and other) :class:`~repro.errors.ActionError` failures
        surface as :class:`~repro.errors.TuningAbortedError` carrying
        the report; any other exception — a genuine bug in an action —
        propagates unchanged after the rollback, so existing error
        contracts (e.g. ``KnobError``) are preserved while the database
        is still left consistent.
        """
        report.failed_action = action.describe()
        self._rollback(db, inverse_stack, saved, report)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        if isinstance(exc, ActionError):
            raise TuningAbortedError(
                f"tuning pass aborted: {exc}", report=report, cause=exc
            ) from exc
        raise exc
