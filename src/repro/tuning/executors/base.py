"""Tuning executor interface.

"The executor takes care of applying the choices that were selected
previously. There are different application strategies regarding order,
point in time and sequential or parallel application" (Section II-D.d).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database


@dataclass
class ApplicationReport:
    """What a tuning executor did and what it cost."""

    strategy: str
    action_summaries: list[str] = field(default_factory=list)
    action_costs_ms: list[float] = field(default_factory=list)
    #: simulated wall time the application occupied
    elapsed_ms: float = 0.0
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def total_work_ms(self) -> float:
        """Sum of per-action costs (≥ elapsed for parallel strategies)."""
        return sum(self.action_costs_ms)

    @property
    def action_count(self) -> int:
        return len(self.action_summaries)


class TuningExecutor(ABC):
    """Applies a configuration delta to the database."""

    name: str = "executor"

    @abstractmethod
    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        """Apply all actions of ``delta``."""
