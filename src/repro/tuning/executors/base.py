"""Tuning executor interface.

"The executor takes care of applying the choices that were selected
previously. There are different application strategies regarding order,
point in time and sequential or parallel application" (Section II-D.d).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database


@dataclass
class ApplicationReport:
    """What a tuning executor did and what it cost.

    Two distinct cost semantics coexist and must not be conflated:

    - **work** (:attr:`total_work_ms`) — the sum of per-action costs.
      This is what resource accounting stores: the database's
      ``total_reconfiguration_ms`` counter, ``ConfigurationRecord
      .reconfiguration_cost_ms``, and the ``reconfiguration_ms`` KPI all
      accumulate work, regardless of execution strategy. Work answers
      "how much reconfiguration effort was spent".
    - **elapsed** (:attr:`elapsed_ms`) — the simulated wall time the
      application occupied, i.e. ``finished_ms - started_ms``. The clock
      advances by elapsed time: per-action for sequential strategies,
      per-batch *maximum* for parallel ones. Elapsed answers "how long
      was the system reconfiguring".

    For :class:`~repro.tuning.executors.sequential.SequentialExecutor`
    the two coincide; for parallel strategies ``elapsed_ms ≤
    total_work_ms`` while counters still record the full work.
    """

    strategy: str
    action_summaries: list[str] = field(default_factory=list)
    action_costs_ms: list[float] = field(default_factory=list)
    #: simulated wall time the application occupied (finished - started)
    elapsed_ms: float = 0.0
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def total_work_ms(self) -> float:
        """Sum of per-action costs (≥ elapsed for parallel strategies).

        This is the quantity recorded by counters and configuration
        records — see the class docstring for the work/elapsed split.
        """
        return sum(self.action_costs_ms)

    @property
    def action_count(self) -> int:
        return len(self.action_summaries)


class TuningExecutor(ABC):
    """Applies a configuration delta to the database."""

    name: str = "executor"

    @abstractmethod
    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        """Apply all actions of ``delta``."""
