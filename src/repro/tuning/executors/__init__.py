"""Tuning executors: sequential and (simulated) parallel application."""

from repro.tuning.executors.base import ApplicationReport, TuningExecutor
from repro.tuning.executors.parallel import ParallelExecutor
from repro.tuning.executors.sequential import SequentialExecutor

__all__ = [
    "ApplicationReport",
    "ParallelExecutor",
    "SequentialExecutor",
    "TuningExecutor",
]
