"""Parallel application: independent actions overlap in simulated time.

Actions are applied in delta order (correctness), but the simulated wall
time advanced is the *maximum* batch cost rather than the sum, modelling
``worker_count`` reconfiguration workers running concurrently. Total work
(and therefore the reconfiguration cost recorded in KPIs) is unchanged.

Failure handling is batch-aware: when an action fails permanently
mid-batch, the already applied batch prefix is first accounted (clock
and counters see the work that really happened) and then the whole pass
— this batch's prefix and all earlier batches — is rolled back through
the shared machinery, leaving the database exactly as before the call.
"""

from __future__ import annotations

from repro.configuration.actions import Action
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.errors import TuningError
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RetryPolicy
from repro.telemetry.facade import Telemetry
from repro.tuning.executors.base import ApplicationReport, TuningExecutor


class ParallelExecutor(TuningExecutor):
    """Applies actions in parallel batches of ``worker_count``."""

    name = "parallel"

    def __init__(
        self,
        worker_count: int = 4,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if worker_count < 1:
            raise TuningError("worker_count must be at least 1")
        super().__init__(injector=injector, retry=retry, telemetry=telemetry)
        self._worker_count = worker_count

    @staticmethod
    def _account_batch(
        db: Database,
        report: ApplicationReport,
        batch: list[Action],
        costs: list[float],
    ) -> None:
        # elapsed (clock) = batch max; work (counters) = batch sum —
        # see the work/elapsed contract in executors/base.py
        db.clock.advance(max(costs, default=0.0))
        db.counters.reconfigurations += len(batch)
        db.counters.total_reconfiguration_ms += sum(costs)
        report.action_summaries.extend(a.describe() for a in batch)
        report.action_costs_ms.extend(costs)

    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        report = ApplicationReport(
            strategy=self.name, started_ms=db.clock.now_ms
        )
        saved = self.snapshot(db)
        inverse_stack: list[Action] = []
        actions = list(delta.actions)
        for start in range(0, len(actions), self._worker_count):
            batch = actions[start : start + self._worker_count]
            costs: list[float] = []
            for action in batch:
                try:
                    cost, inverse = self._apply_action(action, db, report)
                except Exception as exc:
                    # account the applied batch prefix before rolling
                    # the whole pass back, so clock/counters reflect
                    # the work that really happened
                    self._account_batch(db, report, batch[: len(costs)], costs)
                    self._abort(db, inverse_stack, saved, report, action, exc)
                costs.append(cost)
                inverse_stack.extend(inverse)
            self._account_batch(db, report, batch, costs)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        # a clean pass hands its inverse actions to the caller: the commit
        # guard retains them for the probation window (see repro.guard)
        report.inverse_actions = inverse_stack
        return report
