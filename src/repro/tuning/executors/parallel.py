"""Parallel application: independent actions overlap in simulated time.

Actions are applied in delta order (correctness), but the simulated wall
time advanced is the *maximum* batch cost rather than the sum, modelling
``worker_count`` reconfiguration workers running concurrently. Total work
(and therefore the reconfiguration cost recorded in KPIs) is unchanged.
"""

from __future__ import annotations

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.errors import TuningError
from repro.tuning.executors.base import ApplicationReport, TuningExecutor


class ParallelExecutor(TuningExecutor):
    """Applies actions in parallel batches of ``worker_count``."""

    name = "parallel"

    def __init__(self, worker_count: int = 4) -> None:
        if worker_count < 1:
            raise TuningError("worker_count must be at least 1")
        self._worker_count = worker_count

    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        report = ApplicationReport(
            strategy=self.name, started_ms=db.clock.now_ms
        )
        actions = list(delta.actions)
        for start in range(0, len(actions), self._worker_count):
            batch = actions[start : start + self._worker_count]
            costs = [action.estimate_cost_ms(db) for action in batch]
            for action in batch:
                action.apply_raw(db)
            # elapsed (clock) = batch max; work (counters) = batch sum —
            # see the work/elapsed contract in executors/base.py
            elapsed = max(costs, default=0.0)
            db.clock.advance(elapsed)
            db.counters.reconfigurations += len(batch)
            db.counters.total_reconfiguration_ms += sum(costs)
            report.action_summaries.extend(a.describe() for a in batch)
            report.action_costs_ms.extend(costs)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        return report
