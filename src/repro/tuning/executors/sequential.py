"""Sequential application: one action at a time, in delta order.

The delta order is already cost-aware (drops before creates, encodings
before index builds), so sequential application is the safe default.
Each action runs through the shared failure machinery of
:class:`~repro.tuning.executors.base.TuningExecutor`: transient faults
retry with backoff, a permanent fault rolls back every action applied
so far before the abort propagates.
"""

from __future__ import annotations

from repro.configuration.actions import Action
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.tuning.executors.base import ApplicationReport, TuningExecutor


class SequentialExecutor(TuningExecutor):
    """Applies actions one after another, accounting each as it lands."""

    name = "sequential"

    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        report = ApplicationReport(
            strategy=self.name, started_ms=db.clock.now_ms
        )
        saved = self.snapshot(db)
        inverse_stack: list[Action] = []
        for action in delta.actions:
            try:
                cost, inverse = self._apply_action(action, db, report)
            except Exception as exc:
                self._abort(db, inverse_stack, saved, report, action, exc)
            inverse_stack.extend(inverse)
            db.clock.advance(cost)
            db.counters.reconfigurations += 1
            db.counters.total_reconfiguration_ms += cost
            report.action_summaries.append(action.describe())
            report.action_costs_ms.append(cost)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        # a clean pass hands its inverse actions to the caller: the commit
        # guard retains them for the probation window (see repro.guard)
        report.inverse_actions = inverse_stack
        return report
