"""Sequential application: one action at a time, in delta order.

The delta order is already cost-aware (drops before creates, encodings
before index builds), so sequential application is the safe default.
"""

from __future__ import annotations

from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.tuning.executors.base import ApplicationReport, TuningExecutor


class SequentialExecutor(TuningExecutor):
    """Applies actions one after another through the accounted path."""

    name = "sequential"

    def execute(self, delta: ConfigurationDelta, db: Database) -> ApplicationReport:
        report = ApplicationReport(
            strategy=self.name, started_ms=db.clock.now_ms
        )
        for action in delta.actions:
            cost = action.apply(db)
            report.action_summaries.append(action.describe())
            report.action_costs_ms.append(cost)
        report.finished_ms = db.clock.now_ms
        report.elapsed_ms = report.finished_ms - report.started_ms
        return report
