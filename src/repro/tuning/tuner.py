"""The Tuner: the multi-step pipeline Enumerator → Assessor → Selector →
Executor of Section II-D.

Each stage is an exchangeable component: the feature supplies defaults, the
constructor overrides them per run, which is how the framework "simplifies
… experiments of new approaches since components can be exchanged
effortlessly" (Section II-A).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.configuration.constraints import ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.errors import TuningAbortedError
from repro.forecasting.scenarios import Forecast
from repro.telemetry import Telemetry, Tracer
from repro.tuning.assessment import Assessment
from repro.tuning.assessors.base import Assessor
from repro.tuning.enumerators.base import Enumerator
from repro.tuning.executors.base import ApplicationReport, TuningExecutor
from repro.tuning.executors.sequential import SequentialExecutor
from repro.tuning.features.base import FeatureTuner
from repro.tuning.selectors.base import Selector, validate_selection


@dataclass
class TuningResult:
    """Outcome of one tuning run for one feature (before application)."""

    feature: str
    assessments: list[Assessment]
    chosen: list[Assessment]
    delta: ConfigurationDelta
    #: additive per-scenario benefit prediction of the chosen set
    predicted_desirability: dict[str, float] = field(default_factory=dict)
    #: probability-weighted predicted benefit over the forecast horizon
    predicted_benefit_ms: float = 0.0
    #: estimated one-time cost of applying the delta
    reconfiguration_cost_ms: float = 0.0
    candidate_count: int = 0
    selector_name: str = ""
    #: real (host) seconds spent in enumerate / assess / select
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def is_noop(self) -> bool:
        return self.delta.is_empty


class Tuner:
    """Runs the tuning pipeline for one feature."""

    def __init__(
        self,
        feature: FeatureTuner,
        db: Database,
        enumerator: Enumerator | None = None,
        assessor: Assessor | None = None,
        selector: Selector | None = None,
        reconfiguration_weight: float = 0.0,
        optimizer: WhatIfOptimizer | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        """``optimizer`` (when no explicit ``assessor`` is given) makes the
        feature's default assessor price through a shared what-if
        optimizer, so all features reuse one epoch-keyed cost cache.
        ``telemetry`` (the driver's shared spine) adds
        enumerate/assess/select/execute phase spans around the pipeline
        stages."""
        self._feature = feature
        self._db = db
        self._enumerator = enumerator or feature.make_enumerator()
        self._assessor = assessor or feature.make_assessor(
            db, optimizer=optimizer
        )
        self._selector = selector or feature.make_selector()
        self._reconfiguration_weight = reconfiguration_weight
        self._tracer: Tracer = (
            telemetry.tracer if telemetry is not None else Tracer(enabled=False)
        )

    @property
    def feature(self) -> FeatureTuner:
        return self._feature

    @property
    def feature_name(self) -> str:
        return self._feature.name

    def propose(
        self,
        forecast: Forecast,
        constraints: ConstraintSet | None = None,
    ) -> TuningResult:
        """Run enumerate → assess → select; returns a plan, applies nothing."""
        db = self._db
        constraints = constraints or ConstraintSet()
        stage_seconds: dict[str, float] = {}

        started = time.perf_counter()
        with self._tracer.span("enumerate") as span:
            candidates = self._enumerator.candidates(db, forecast)
            span.tag(candidates=len(candidates))
        stage_seconds["enumerate"] = time.perf_counter() - started

        if not candidates:
            return TuningResult(
                feature=self.feature_name,
                assessments=[],
                chosen=[],
                delta=ConfigurationDelta([]),
                candidate_count=0,
                selector_name=self._selector.name,
                stage_seconds=stage_seconds,
            )

        started = time.perf_counter()
        with self._tracer.span("assess") as span:
            reset = self._feature.reset_delta(db, forecast)
            assessments = self._assessor.assess(candidates, db, forecast, reset)
            span.tag(assessments=len(assessments))
        stage_seconds["assess"] = time.perf_counter() - started

        budgets = self._feature.budgets(db, constraints, forecast)
        probabilities = {s.name: s.probability for s in forecast.scenarios}

        started = time.perf_counter()
        with self._tracer.span("select", selector=self._selector.name) as span:
            chosen = self._selector.select(
                assessments,
                budgets,
                probabilities,
                self._reconfiguration_weight,
            )
            span.tag(chosen=len(chosen))
        stage_seconds["select"] = time.perf_counter() - started

        problems = validate_selection(
            assessments, {assessments.index(a) for a in chosen}, budgets
        )
        if problems:
            raise RuntimeError(
                f"selector {self._selector.name!r} returned an infeasible "
                f"selection: {problems}"
            )

        delta = self._feature.delta_for_choices(
            db, [a.candidate for a in chosen], forecast
        )
        predicted = {
            name: sum(a.desirability.get(name, 0.0) for a in chosen)
            for name in forecast.scenario_names
        }
        benefit = sum(
            forecast.scenario(name).probability * value
            for name, value in predicted.items()
        )
        return TuningResult(
            feature=self.feature_name,
            assessments=assessments,
            chosen=chosen,
            delta=delta,
            predicted_desirability=predicted,
            predicted_benefit_ms=benefit,
            reconfiguration_cost_ms=delta.estimate_cost_ms(db),
            candidate_count=len(candidates),
            selector_name=self._selector.name,
            stage_seconds=stage_seconds,
        )

    def apply(
        self,
        result: TuningResult,
        executor: TuningExecutor | None = None,
    ) -> ApplicationReport:
        """Apply a proposed result through a tuning executor.

        On a permanent action failure the executor rolls the pass back
        and raises :class:`~repro.errors.TuningAbortedError`; the tuner
        attaches the feature name and the proposed result so callers
        (planner, organizer) can account for the aborted pass.
        """
        executor = executor or SequentialExecutor()
        with self._tracer.span("execute", executor=executor.name) as span:
            try:
                report = executor.execute(result.delta, self._db)
            except TuningAbortedError as exc:
                exc.feature = self.feature_name
                exc.result = result
                raise
            span.tag(
                actions=len(result.delta.actions),
                work_ms=round(report.total_work_ms, 3),
            )
        return report

    def tune(
        self,
        forecast: Forecast,
        constraints: ConstraintSet | None = None,
        executor: TuningExecutor | None = None,
        result: TuningResult | None = None,
    ) -> tuple[TuningResult, ApplicationReport]:
        """Propose and immediately apply.

        An externally-supplied ``result`` (e.g. a step of an evaluated
        policy plan) skips the propose pipeline and is applied verbatim
        — the caller vouches that it was proposed against the current
        database state.
        """
        if result is None:
            result = self.propose(forecast, constraints)
        report = self.apply(result, executor)
        return result, report
