"""The index-selection feature tuner."""

from __future__ import annotations

from repro.configuration.actions import CreateIndexAction, DropIndexAction
from repro.configuration.constraints import INDEX_MEMORY, ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, IndexCandidate
from repro.tuning.enumerators.base import workload_tables
from repro.tuning.enumerators.index_enum import IndexEnumerator
from repro.tuning.features.base import FeatureTuner


def _expand_specs(
    db: Database, candidates: list[IndexCandidate]
) -> set[tuple[str, tuple[str, ...], int]]:
    """Expand candidates to per-chunk (table, columns, chunk_id) triples."""
    specs: set[tuple[str, tuple[str, ...], int]] = set()
    for candidate in candidates:
        table = db.table(candidate.table)
        chunk_ids = (
            table.chunk_ids()
            if candidate.chunk_ids is None
            else candidate.chunk_ids
        )
        for chunk_id in chunk_ids:
            specs.add((candidate.table, candidate.columns, chunk_id))
    return specs


def _current_specs(
    db: Database, tables: set[str]
) -> set[tuple[str, tuple[str, ...], int]]:
    specs: set[tuple[str, tuple[str, ...], int]] = set()
    for table_name in tables:
        if not db.catalog.has_table(table_name):
            continue
        for chunk in db.table(table_name).chunks():
            for key in chunk.index_keys():
                specs.add((table_name, key, chunk.chunk_id))
    return specs


def _grouped_actions(
    specs: set[tuple[str, tuple[str, ...], int]], action_cls: type
) -> list:
    grouped: dict[tuple[str, tuple[str, ...]], list[int]] = {}
    for table, columns, chunk_id in specs:
        grouped.setdefault((table, columns), []).append(chunk_id)
    return [
        action_cls(table, columns, tuple(sorted(ids)))
        for (table, columns), ids in sorted(grouped.items())
    ]


class IndexSelectionFeature(FeatureTuner):
    """Selects multi-attribute chunk indexes under a memory budget."""

    name = "index_selection"

    def __init__(self, max_width: int = 2, per_chunk: bool = False) -> None:
        self._max_width = max_width
        self._per_chunk = per_chunk

    def make_enumerator(self) -> IndexEnumerator:
        return IndexEnumerator(
            max_width=self._max_width, per_chunk=self._per_chunk
        )

    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        specs = _current_specs(db, workload_tables(forecast))
        return ConfigurationDelta(_grouped_actions(specs, DropIndexAction))

    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        index_choices = [c for c in chosen if isinstance(c, IndexCandidate)]
        desired = _expand_specs(db, index_choices)
        current = _current_specs(db, workload_tables(forecast))
        actions = _grouped_actions(current - desired, DropIndexAction)
        actions.extend(_grouped_actions(desired - current, CreateIndexAction))
        return ConfigurationDelta(actions)

    def budgets(
        self, db: Database, constraints: ConstraintSet, forecast: Forecast
    ) -> dict[str, float]:
        limit = constraints.effective_budget(INDEX_MEMORY)
        if limit is None:
            return {}
        # Candidates are measured from the feature-reset baseline (no
        # indexes on workload tables); indexes on *other* tables still count
        # against the system-wide budget.
        scope_tables = workload_tables(forecast)
        outside = sum(
            t.index_bytes()
            for t in db.catalog.tables()
            if t.name not in scope_tables
        )
        return {INDEX_MEMORY: limit - outside}
