"""The compression (encoding selection) feature tuner."""

from __future__ import annotations

from repro.configuration.actions import SetEncodingAction
from repro.configuration.constraints import TOTAL_MEMORY, ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.dbms.segments import EncodingType
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, EncodingCandidate
from repro.tuning.enumerators.encoding_enum import EncodingEnumerator
from repro.tuning.features.base import FeatureTuner


def _differs(db: Database, candidate: EncodingCandidate) -> bool:
    """Whether applying the candidate would change any chunk."""
    table = db.table(candidate.table)
    chunks = (
        table.chunks()
        if candidate.chunk_ids is None
        else [table.chunk(cid) for cid in candidate.chunk_ids]
    )
    return any(
        chunk.encoding_of(candidate.column) is not candidate.encoding
        for chunk in chunks
    )


class CompressionFeature(FeatureTuner):
    """Chooses a segment encoding per workload-relevant column."""

    name = "compression"

    def __init__(self, all_columns: bool = False, per_chunk: bool = False) -> None:
        self._all_columns = all_columns
        self._per_chunk = per_chunk

    def make_enumerator(self) -> EncodingEnumerator:
        return EncodingEnumerator(
            all_columns=self._all_columns, per_chunk=self._per_chunk
        )

    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        actions = []
        for table_name, column in self.make_enumerator().relevant_columns(
            db, forecast
        ):
            if not db.catalog.has_table(table_name):
                continue
            if not db.table(table_name).schema.has_column(column):
                continue
            candidate = EncodingCandidate(
                table_name, column, EncodingType.UNENCODED, None
            )
            if _differs(db, candidate):
                actions.append(
                    SetEncodingAction(
                        table_name, column, EncodingType.UNENCODED, None
                    )
                )
        return ConfigurationDelta(actions)

    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        del forecast
        actions = []
        for candidate in chosen:
            if not isinstance(candidate, EncodingCandidate):
                continue
            if _differs(db, candidate):
                actions.extend(candidate.actions())
        return ConfigurationDelta(actions)

    def budgets(
        self, db: Database, constraints: ConstraintSet, forecast: Forecast
    ) -> dict[str, float]:
        """Encodings usually *save* memory; a TOTAL_MEMORY budget (if set)
        binds the selection's memory delta relative to the all-unencoded
        baseline of the enumerated columns."""
        del db, forecast
        limit = constraints.effective_budget(TOTAL_MEMORY)
        if limit is None:
            return {}
        # Assessors report per-candidate deltas vs the reset baseline; a
        # caller setting TOTAL_MEMORY is expected to pass the *delta*
        # allowance (how many bytes above the unencoded baseline are
        # acceptable — usually 0 or negative to force compression).
        return {TOTAL_MEMORY: limit}
