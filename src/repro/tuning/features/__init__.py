"""Feature tuners: one per tunable feature, as the paper prescribes."""

from repro.tuning.features.base import FeatureTuner
from repro.tuning.features.buffer_pool import BufferPoolFeature
from repro.tuning.features.compression import CompressionFeature
from repro.tuning.features.data_placement import DataPlacementFeature
from repro.tuning.features.index_selection import IndexSelectionFeature
from repro.tuning.features.sort_order import SortOrderFeature

__all__ = [
    "BufferPoolFeature",
    "CompressionFeature",
    "DataPlacementFeature",
    "FeatureTuner",
    "IndexSelectionFeature",
    "SortOrderFeature",
]


def standard_features(include_sort_order: bool = False) -> list[FeatureTuner]:
    """The paper's four example features, optionally plus sort order."""
    features: list[FeatureTuner] = [
        IndexSelectionFeature(),
        CompressionFeature(),
        DataPlacementFeature(),
        BufferPoolFeature(),
    ]
    if include_sort_order:
        features.insert(0, SortOrderFeature())
    return features
