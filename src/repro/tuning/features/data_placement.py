"""The data-placement (tiering) feature tuner."""

from __future__ import annotations

from repro.configuration.actions import MoveChunkAction
from repro.configuration.constraints import DRAM_BYTES, ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.dbms.storage_tiers import StorageTier
from repro.forecasting.scenarios import Forecast
from repro.tuning.candidate import Candidate, PlacementCandidate
from repro.tuning.enumerators.base import workload_tables
from repro.tuning.enumerators.placement_enum import PlacementEnumerator
from repro.tuning.features.base import FeatureTuner


class DataPlacementFeature(FeatureTuner):
    """Assigns every chunk of the workload tables to a storage tier."""

    name = "data_placement"

    def __init__(self, tiers: tuple[StorageTier, ...] | None = None) -> None:
        self._tiers = tiers

    def make_enumerator(self) -> PlacementEnumerator:
        return PlacementEnumerator(self._tiers)

    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        actions = []
        for table_name in sorted(workload_tables(forecast)):
            if not db.catalog.has_table(table_name):
                continue
            for chunk in db.table(table_name).chunks():
                if chunk.tier is not StorageTier.DRAM:
                    actions.append(
                        MoveChunkAction(
                            table_name, chunk.chunk_id, StorageTier.DRAM
                        )
                    )
        return ConfigurationDelta(actions)

    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        del forecast
        actions = []
        for candidate in chosen:
            if not isinstance(candidate, PlacementCandidate):
                continue
            chunk = db.table(candidate.table).chunk(candidate.chunk_id)
            if chunk.tier is not candidate.tier:
                actions.extend(candidate.actions())
        return ConfigurationDelta(actions)

    def budgets(
        self, db: Database, constraints: ConstraintSet, forecast: Forecast
    ) -> dict[str, float]:
        limit = constraints.effective_budget(DRAM_BYTES)
        if limit is None:
            return {}
        # Candidates are measured against the all-DRAM reset baseline:
        # compute what chunk-data DRAM usage would be there, and hand the
        # selector the remaining headroom (usually negative, forcing
        # evictions). The DRAM budget governs chunk data; the buffer pool's
        # reservation is the buffer-pool feature's own lever and is not
        # charged here.
        scope_tables = workload_tables(forecast)
        reset_usage = float(db.tier_usage()[StorageTier.DRAM])
        for table_name in scope_tables:
            if not db.catalog.has_table(table_name):
                continue
            for chunk in db.table(table_name).chunks():
                if chunk.tier is not StorageTier.DRAM:
                    reset_usage += chunk.memory_bytes()
        return {DRAM_BYTES: limit - reset_usage}
