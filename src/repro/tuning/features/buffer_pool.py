"""The buffer-pool-size feature tuner (a continuous knob).

Demonstrates the paper's range-candidate form: the knob definition carries
``[start, end]`` and the smallest interval; the enumerator samples values;
a specialised assessor measures each capacity on a warmed scratch pool.
"""

from __future__ import annotations

from repro.configuration.constraints import DRAM_BYTES, ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.dbms.database import Database
from repro.dbms.knobs import BUFFER_POOL_KNOB
from repro.dbms.storage_tiers import StorageTier
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessors.base import Assessor
from repro.tuning.assessors.buffer_pool import BufferPoolAssessor
from repro.tuning.candidate import Candidate, KnobCandidate
from repro.tuning.enumerators.knob_enum import KnobEnumerator
from repro.tuning.features.base import FeatureTuner


class BufferPoolFeature(FeatureTuner):
    """Chooses the buffer-pool capacity from its stepped range."""

    name = "buffer_pool"

    def __init__(self, max_candidates: int = 7) -> None:
        self._max_candidates = max_candidates

    def make_enumerator(self) -> KnobEnumerator:
        return KnobEnumerator(
            BUFFER_POOL_KNOB,
            max_candidates=self._max_candidates,
            feature_name=self.name,
        )

    def make_assessor(self, db: Database, optimizer=None) -> Assessor:
        # scratch-pool measurement does no what-if pricing; a shared
        # optimizer (and its cost cache) has nothing to offer here
        del db, optimizer
        return BufferPoolAssessor()

    def make_fast_assessor(self, db: Database, estimator) -> Assessor | None:
        # buffer-pool benefit is invisible to analytic estimators (it is a
        # caching effect); keep the scratch-pool measurement
        del db, estimator
        return None

    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        # The buffer-pool assessor measures against the knob default on a
        # scratch pool; no state needs clearing on the real database.
        del db, forecast
        return ConfigurationDelta([])

    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        del forecast
        actions = []
        for candidate in chosen:
            if not isinstance(candidate, KnobCandidate):
                continue
            if db.knobs.get(candidate.name) != candidate.value:
                actions.extend(candidate.actions())
        return ConfigurationDelta(actions)

    def budgets(
        self, db: Database, constraints: ConstraintSet, forecast: Forecast
    ) -> dict[str, float]:
        del forecast
        limit = constraints.effective_budget(DRAM_BYTES)
        if limit is None:
            return {}
        # The buffer-pool assessor reports the *absolute* capacity as the
        # DRAM cost, so the budget is the headroom next to chunk data.
        chunk_dram = float(db.tier_usage()[StorageTier.DRAM])
        return {DRAM_BYTES: limit - chunk_dram}
