"""Feature tuner interface.

"There is one tuner instance per feature, e.g., a tuner for index selection
and another tuner for determining efficient partitioning schemes"
(Section II-D). A :class:`FeatureTuner` encapsulates everything that is
specific to one feature:

- the default enumerator/assessor/selector (all exchangeable per run);
- the *reset delta*: the feature-clean slate against which candidates are
  assessed (selection-from-scratch semantics);
- how a set of chosen candidates maps back onto a concrete
  :class:`~repro.configuration.delta.ConfigurationDelta` from the current
  state;
- which resource budgets bind the selection, expressed *relative to the
  reset baseline* so selectors and assessors agree on accounting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.configuration.constraints import ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessors.base import Assessor
from repro.tuning.assessors.cost_model import CostModelAssessor
from repro.tuning.candidate import Candidate
from repro.tuning.enumerators.base import Enumerator
from repro.tuning.selectors.base import Selector
from repro.tuning.selectors.greedy import GreedySelector


class FeatureTuner(ABC):
    """Feature-specific behaviour of the generic tuning pipeline."""

    name: ClassVar[str] = "feature"

    @abstractmethod
    def make_enumerator(self) -> Enumerator:
        """The feature's default candidate enumerator."""

    def make_assessor(
        self, db: Database, optimizer: WhatIfOptimizer | None = None
    ) -> Assessor:
        """Default assessor: measured what-if cost estimation.

        Passing ``optimizer`` shares one what-if optimizer — and with it
        the epoch-keyed cost cache — across features and with the caller
        (the organizer attaches the shared cache to KPI monitoring)."""
        return CostModelAssessor(optimizer or WhatIfOptimizer(db))

    def make_fast_assessor(self, db: Database, estimator) -> Assessor | None:
        """Assessor backed by an analytic/learned estimator instead of
        measured execution — the low-overhead production mode. Features
        whose assessment cannot be estimator-driven return ``None`` to keep
        their specialised assessor."""
        return CostModelAssessor(WhatIfOptimizer(db, estimator))

    def make_selector(self) -> Selector:
        """Default selector: greedy (short runtime, good quality)."""
        return GreedySelector()

    @abstractmethod
    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        """Actions that clear this feature on the workload's tables."""

    @abstractmethod
    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        """Delta from the *current* configuration to the chosen selection."""

    def budgets(
        self, db: Database, constraints: ConstraintSet, forecast: Forecast
    ) -> dict[str, float]:
        """Budgets binding this feature's selection, relative to the reset
        baseline. Default: none."""
        del db, constraints, forecast
        return {}
