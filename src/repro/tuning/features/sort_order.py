"""The sort-order feature tuner.

Chooses a physical intra-chunk sort column per workload table. Selection is
*incremental* rather than selection-from-scratch: a chunk's original ingest
order is not recoverable from a configuration instance, so the reset delta
is empty and candidates are assessed against the current order. The main
payoff of sorting arrives through the compression feature (run-length
segments collapse on sorted data) — which is exactly why the ordering LP
consistently schedules ``sort_order`` before ``compression``.
"""

from __future__ import annotations

from repro.configuration.delta import ConfigurationDelta
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.forecasting.scenarios import Forecast
from repro.tuning.assessors.base import Assessor
from repro.tuning.assessors.sort_benefit import SortBenefitAssessor
from repro.tuning.candidate import Candidate, SortOrderCandidate
from repro.tuning.enumerators.sort_enum import SortOrderEnumerator
from repro.tuning.features.base import FeatureTuner


class SortOrderFeature(FeatureTuner):
    """Per-table physical sort order selection."""

    name = "sort_order"

    def __init__(self, per_chunk: bool = False, max_columns: int = 4) -> None:
        self._per_chunk = per_chunk
        self._max_columns = max_columns

    def make_enumerator(self) -> SortOrderEnumerator:
        return SortOrderEnumerator(
            per_chunk=self._per_chunk, max_columns=self._max_columns
        )

    def make_assessor(self, db: Database, optimizer=None) -> Assessor:
        # sorting pays off *through* later compression; the anticipating
        # assessor prices each sort at its best follow-up encoding
        return SortBenefitAssessor(optimizer or WhatIfOptimizer(db))

    def make_fast_assessor(self, db: Database, estimator) -> Assessor | None:
        # the anticipating assessor composes with analytic estimators too
        return SortBenefitAssessor(WhatIfOptimizer(db, estimator))

    def reset_delta(self, db: Database, forecast: Forecast) -> ConfigurationDelta:
        # ingest order cannot be restored from an instance; assess
        # incrementally against the current order
        del db, forecast
        return ConfigurationDelta([])

    def delta_for_choices(
        self,
        db: Database,
        chosen: list[Candidate],
        forecast: Forecast,
    ) -> ConfigurationDelta:
        del forecast
        actions = []
        for candidate in chosen:
            if not isinstance(candidate, SortOrderCandidate):
                continue
            table = db.table(candidate.table)
            chunks = (
                table.chunks()
                if candidate.chunk_ids is None
                else [table.chunk(cid) for cid in candidate.chunk_ids]
            )
            if any(c.sort_column != candidate.column for c in chunks):
                actions.extend(candidate.actions())
        return ConfigurationDelta(actions)
