"""Simulated system KPIs derived from database counters.

Real deployments read these from the OS / perf counters; the simulator
derives equivalent signals: CPU utilization is the fraction of simulated
wall time spent executing queries and reconfigurations, memory utilization
relates resident bytes to DRAM capacity, and the cache-miss rate proxies
hardware cache misses with buffer pool misses.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.dbms.hardware import HardwareProfile
from repro.dbms.storage_tiers import StorageTier
from repro.kpi.metrics import (
    CACHE_MISS_RATE,
    CPU_UTILIZATION,
    MEMORY_UTILIZATION,
)


def derive_system_kpis(
    previous: Mapping[str, float],
    current: Mapping[str, float],
    hardware: HardwareProfile,
) -> dict[str, float]:
    """System KPIs for the interval between two runtime snapshots."""
    elapsed = current.get("now_ms", 0.0) - previous.get("now_ms", 0.0)
    busy = (
        current.get("total_query_ms", 0.0)
        - previous.get("total_query_ms", 0.0)
        + current.get("total_reconfiguration_ms", 0.0)
        - previous.get("total_reconfiguration_ms", 0.0)
    )
    utilization = min(max(busy / elapsed, 0.0), 1.0) if elapsed > 0 else 0.0

    dram_capacity = float(hardware.tier_capacity_bytes(StorageTier.DRAM))
    resident = current.get("tier_dram_bytes", 0.0) + current.get(
        "buffer_pool_used_bytes", 0.0
    )
    memory_utilization = min(resident / dram_capacity, 1.0) if dram_capacity else 0.0

    hits = current.get("buffer_hits", 0.0) - previous.get("buffer_hits", 0.0)
    misses = current.get("buffer_misses", 0.0) - previous.get(
        "buffer_misses", 0.0
    )
    accesses = hits + misses
    miss_rate = misses / accesses if accesses > 0 else 0.0

    return {
        CPU_UTILIZATION: utilization,
        MEMORY_UTILIZATION: memory_utilization,
        CACHE_MISS_RATE: miss_rate,
    }
