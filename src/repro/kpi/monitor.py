"""The runtime KPI monitor.

"The use cases of runtime KPIs are manifold. First, they are necessary for
determining the impact of adjusted configurations … Second, runtime KPIs
can disclose when the configuration should be adjusted … Furthermore, these
KPIs can help to identify phases of low resource utilization that can be
used to run resource-intensive tunings" (Section II-A.e). All three uses
hang off this monitor: interval-derived KPI samples, SLA breach tracking,
and idle detection.

Beyond the database's own counters, the monitor derives interval KPIs
*generically* from a telemetry :class:`~repro.telemetry.MetricRegistry`:
every registered counter becomes a per-interval delta and every gauge a
point-in-time value in each sample. New subsystems therefore get KPI
coverage by registering a counter — no monitor changes required. The
what-if cost-cache KPIs flow through exactly this path.
"""

from __future__ import annotations

import math
from collections import deque
from itertools import islice

from repro.configuration.constraints import SlaConstraint
from repro.dbms.database import Database
from repro.kpi.metrics import (
    CPU_UTILIZATION,
    INDEX_MEMORY_BYTES,
    MEAN_QUERY_MS,
    MEMORY_BYTES,
    P99_QUERY_MS,
    PLAN_CACHE_HIT_RATE,
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    QUERIES_EXECUTED,
    RECONFIGURATION_MS,
    THROUGHPUT_QPS,
    TOTAL_QUERY_MS,
    WHATIF_CACHE_HIT_RATE,
    WHATIF_CACHE_HITS,
    WHATIF_CACHE_MISSES,
    KPISample,
)
from repro.kpi.system import derive_system_kpis
from repro.telemetry.metrics import MetricRegistry


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


class RuntimeKPIMonitor:
    """Samples KPIs from database counters on demand."""

    def __init__(
        self,
        db: Database,
        window: int = 64,
        registry: MetricRegistry | None = None,
        tenant: str = "",
    ) -> None:
        """``registry`` is the telemetry registry whose counters/gauges are
        folded into every sample (the driver passes its shared one); a
        private empty registry is used when omitted. ``tenant`` labels the
        monitor in a fleet ('' for single-tenant); each tenant owns its
        own monitor, window, and registry — KPIs never mix across tenants
        except through an explicit fleet rollup."""
        if window < 2:
            raise ValueError("window must be at least 2")
        self._db = db
        self._tenant = tenant
        self._samples: deque[KPISample] = deque(maxlen=window)
        self._last_snapshot = db.runtime_snapshot()
        self._sla_streaks: dict[str, int] = {}
        self._sample_seq = 0
        self._streak_seq = 0
        self._registry = registry if registry is not None else MetricRegistry()
        self._last_metric_snapshot = self._registry.snapshot_counters()

    @property
    def registry(self) -> MetricRegistry:
        """The registry whose metrics are folded into each sample."""
        return self._registry

    @property
    def tenant(self) -> str:
        """Tenant this monitor belongs to ('' for single-tenant)."""
        return self._tenant

    def sample(self) -> KPISample:
        """Close one monitoring interval and derive its KPIs."""
        current = self._db.runtime_snapshot()
        previous = self._last_snapshot
        self._last_snapshot = current

        # generic telemetry-derived KPIs first, so the monitor's own
        # built-in derivations win on any name collision
        values: dict[str, float] = {}
        metrics = self._registry.snapshot_counters()
        for name, value in metrics.items():
            values[name] = value - self._last_metric_snapshot.get(name, 0.0)
        self._last_metric_snapshot = metrics
        values.update(self._registry.snapshot_gauges())
        if WHATIF_CACHE_HITS in metrics or WHATIF_CACHE_MISSES in metrics:
            hits = values.get(WHATIF_CACHE_HITS, 0.0)
            priced = hits + values.get(WHATIF_CACHE_MISSES, 0.0)
            values[WHATIF_CACHE_HIT_RATE] = hits / priced if priced else 0.0
        if PLAN_CACHE_HITS in metrics or PLAN_CACHE_MISSES in metrics:
            hits = values.get(PLAN_CACHE_HITS, 0.0)
            looked_up = hits + values.get(PLAN_CACHE_MISSES, 0.0)
            values[PLAN_CACHE_HIT_RATE] = (
                hits / looked_up if looked_up else 0.0
            )

        elapsed_ms = current["now_ms"] - previous["now_ms"]
        queries = current["queries_executed"] - previous["queries_executed"]
        query_ms = current["total_query_ms"] - previous["total_query_ms"]
        # tail latency of the interval, from the database's bounded
        # recent-latency ring: the interval's queries are its newest
        # entries (the ring only ever drops the oldest), so the last
        # `queries` values are exactly this interval's latencies unless
        # trimming outpaced the window — then the whole ring is the best
        # available approximation
        p99 = 0.0
        if queries > 0:
            recent = self._db.counters.recent_query_ms
            tail_n = min(int(queries), len(recent))
            if tail_n:
                p99 = percentile(recent[-tail_n:], 0.99)
        values.update(
            {
                QUERIES_EXECUTED: queries,
                TOTAL_QUERY_MS: query_ms,
                MEAN_QUERY_MS: query_ms / queries if queries > 0 else 0.0,
                P99_QUERY_MS: p99,
                THROUGHPUT_QPS: (
                    1000.0 * queries / elapsed_ms if elapsed_ms > 0 else 0.0
                ),
                RECONFIGURATION_MS: current["total_reconfiguration_ms"]
                - previous["total_reconfiguration_ms"],
                INDEX_MEMORY_BYTES: current["index_bytes"],
                MEMORY_BYTES: current["memory_bytes"],
            }
        )
        values.update(
            derive_system_kpis(previous, current, self._db.hardware)
        )
        sample = KPISample(at_ms=current["now_ms"], values=values)
        self._samples.append(sample)
        self._sample_seq += 1
        return sample

    # ------------------------------------------------------------------
    # history access

    @property
    def latest(self) -> KPISample | None:
        return self._samples[-1] if self._samples else None

    def history(self) -> tuple[KPISample, ...]:
        return tuple(self._samples)

    def mean(self, metric: str, last_n: int | None = None) -> float:
        # iterate the deque in place (islice) instead of copying it
        count = len(self._samples)
        if last_n is not None:
            count = min(last_n, count)
        if count == 0:
            return 0.0
        window = islice(self._samples, len(self._samples) - count, None)
        return sum(s.get(metric) for s in window) / count

    # ------------------------------------------------------------------
    # SLA tracking and idle detection

    def update_sla_streaks(self, slas: tuple[SlaConstraint, ...]) -> dict[str, int]:
        """Refresh per-SLA consecutive-violation streaks from the latest
        sample; returns metric → streak length.

        Idempotent per sample: calling this again before a new
        :meth:`sample` closes the next interval (e.g. several trigger
        evaluations within one organizer tick) must not count the same
        violation twice, so repeat calls return the current streaks
        unchanged.
        """
        latest = self.latest
        if latest is None:
            return dict(self._sla_streaks)
        if self._streak_seq == self._sample_seq:
            return dict(self._sla_streaks)
        self._streak_seq = self._sample_seq
        for sla in slas:
            if latest.get(sla.metric) > sla.threshold:
                self._sla_streaks[sla.metric] = (
                    self._sla_streaks.get(sla.metric, 0) + 1
                )
            else:
                self._sla_streaks[sla.metric] = 0
        return dict(self._sla_streaks)

    def breached_slas(
        self, slas: tuple[SlaConstraint, ...]
    ) -> list[SlaConstraint]:
        """SLAs whose violation streak has reached their patience."""
        return [
            sla
            for sla in slas
            if self._sla_streaks.get(sla.metric, 0) >= sla.patience
        ]

    def is_idle(self, threshold: float = 0.3, samples: int = 2) -> bool:
        """Low-utilization window suitable for resource-intensive tunings."""
        if len(self._samples) < samples:
            return False
        recent = islice(self._samples, len(self._samples) - samples, None)
        return all(s.get(CPU_UTILIZATION) <= threshold for s in recent)
