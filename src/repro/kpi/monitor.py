"""The runtime KPI monitor.

"The use cases of runtime KPIs are manifold. First, they are necessary for
determining the impact of adjusted configurations … Second, runtime KPIs
can disclose when the configuration should be adjusted … Furthermore, these
KPIs can help to identify phases of low resource utilization that can be
used to run resource-intensive tunings" (Section II-A.e). All three uses
hang off this monitor: interval-derived KPI samples, SLA breach tracking,
and idle detection.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.configuration.constraints import SlaConstraint
from repro.dbms.database import Database
from repro.kpi.metrics import (
    CPU_UTILIZATION,
    INDEX_MEMORY_BYTES,
    MEAN_QUERY_MS,
    MEMORY_BYTES,
    QUERIES_EXECUTED,
    RECONFIGURATION_MS,
    THROUGHPUT_QPS,
    TOTAL_QUERY_MS,
    WHATIF_CACHE_EVICTIONS,
    WHATIF_CACHE_HIT_RATE,
    WHATIF_CACHE_HITS,
    WHATIF_CACHE_MISSES,
    KPISample,
)
from repro.kpi.system import derive_system_kpis

if TYPE_CHECKING:
    from repro.cost.what_if import WhatIfOptimizer


class RuntimeKPIMonitor:
    """Samples KPIs from database counters on demand."""

    def __init__(self, db: Database, window: int = 64) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        self._db = db
        self._samples: deque[KPISample] = deque(maxlen=window)
        self._last_snapshot = db.runtime_snapshot()
        self._sla_streaks: dict[str, int] = {}
        self._sample_seq = 0
        self._streak_seq = 0
        self._whatif: WhatIfOptimizer | None = None
        self._last_cache_stats = None

    def attach_whatif_cache(self, optimizer: "WhatIfOptimizer") -> None:
        """Surface ``optimizer``'s cost-cache counters as interval KPIs
        (hits, misses, evictions, and hit rate per monitoring interval)."""
        self._whatif = optimizer
        self._last_cache_stats = optimizer.cache_stats

    def sample(self) -> KPISample:
        """Close one monitoring interval and derive its KPIs."""
        current = self._db.runtime_snapshot()
        previous = self._last_snapshot
        self._last_snapshot = current

        elapsed_ms = current["now_ms"] - previous["now_ms"]
        queries = current["queries_executed"] - previous["queries_executed"]
        query_ms = current["total_query_ms"] - previous["total_query_ms"]
        values = {
            QUERIES_EXECUTED: queries,
            TOTAL_QUERY_MS: query_ms,
            MEAN_QUERY_MS: query_ms / queries if queries > 0 else 0.0,
            THROUGHPUT_QPS: (
                1000.0 * queries / elapsed_ms if elapsed_ms > 0 else 0.0
            ),
            RECONFIGURATION_MS: current["total_reconfiguration_ms"]
            - previous["total_reconfiguration_ms"],
            INDEX_MEMORY_BYTES: current["index_bytes"],
            MEMORY_BYTES: current["memory_bytes"],
        }
        values.update(
            derive_system_kpis(previous, current, self._db.hardware)
        )
        if self._whatif is not None:
            stats = self._whatif.cache_stats
            last = self._last_cache_stats
            hits = stats.hits - last.hits
            misses = stats.misses - last.misses
            priced = hits + misses
            values[WHATIF_CACHE_HITS] = float(hits)
            values[WHATIF_CACHE_MISSES] = float(misses)
            values[WHATIF_CACHE_EVICTIONS] = float(
                stats.evictions - last.evictions
            )
            values[WHATIF_CACHE_HIT_RATE] = (
                hits / priced if priced else 0.0
            )
            self._last_cache_stats = stats
        sample = KPISample(at_ms=current["now_ms"], values=values)
        self._samples.append(sample)
        self._sample_seq += 1
        return sample

    # ------------------------------------------------------------------
    # history access

    @property
    def latest(self) -> KPISample | None:
        return self._samples[-1] if self._samples else None

    def history(self) -> tuple[KPISample, ...]:
        return tuple(self._samples)

    def mean(self, metric: str, last_n: int | None = None) -> float:
        samples = list(self._samples)
        if last_n is not None:
            samples = samples[-last_n:]
        if not samples:
            return 0.0
        return sum(s.get(metric) for s in samples) / len(samples)

    # ------------------------------------------------------------------
    # SLA tracking and idle detection

    def update_sla_streaks(self, slas: tuple[SlaConstraint, ...]) -> dict[str, int]:
        """Refresh per-SLA consecutive-violation streaks from the latest
        sample; returns metric → streak length.

        Idempotent per sample: calling this again before a new
        :meth:`sample` closes the next interval (e.g. several trigger
        evaluations within one organizer tick) must not count the same
        violation twice, so repeat calls return the current streaks
        unchanged.
        """
        latest = self.latest
        if latest is None:
            return dict(self._sla_streaks)
        if self._streak_seq == self._sample_seq:
            return dict(self._sla_streaks)
        self._streak_seq = self._sample_seq
        for sla in slas:
            if latest.get(sla.metric) > sla.threshold:
                self._sla_streaks[sla.metric] = (
                    self._sla_streaks.get(sla.metric, 0) + 1
                )
            else:
                self._sla_streaks[sla.metric] = 0
        return dict(self._sla_streaks)

    def breached_slas(
        self, slas: tuple[SlaConstraint, ...]
    ) -> list[SlaConstraint]:
        """SLAs whose violation streak has reached their patience."""
        return [
            sla
            for sla in slas
            if self._sla_streaks.get(sla.metric, 0) >= sla.patience
        ]

    def is_idle(self, threshold: float = 0.3, samples: int = 2) -> bool:
        """Low-utilization window suitable for resource-intensive tunings."""
        recent = list(self._samples)[-samples:]
        if len(recent) < samples:
            return False
        return all(s.get(CPU_UTILIZATION) <= threshold for s in recent)
