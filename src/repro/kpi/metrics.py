"""Runtime KPI definitions.

"We classify runtime KPIs as DBMS or system specific. Examples for typical
DBMS KPIs are query response times … system KPIs are mostly comprised of
hardware metrics: CPU utilization, memory usage, or cache misses"
(Section II-A.e).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# DBMS-specific KPIs
MEAN_QUERY_MS = "mean_query_ms"
#: 99th-percentile per-query latency of the interval, derived from the
#: database's recent-latency ring (see RuntimeKPIMonitor.sample)
P99_QUERY_MS = "p99_query_ms"
THROUGHPUT_QPS = "throughput_qps"
TOTAL_QUERY_MS = "total_query_ms"
QUERIES_EXECUTED = "queries_executed"
RECONFIGURATION_MS = "reconfiguration_ms"
INDEX_MEMORY_BYTES = "index_memory_bytes"
MEMORY_BYTES = "memory_bytes"

# what-if cost-cache KPIs (per monitoring interval; see cost/what_if.py).
# The hits/misses/evictions names double as the optimizer's counter names
# in the telemetry MetricRegistry; the monitor derives the interval KPIs
# generically from those counters.
WHATIF_CACHE_HITS = "whatif_cache_hits"
WHATIF_CACHE_MISSES = "whatif_cache_misses"
WHATIF_CACHE_EVICTIONS = "whatif_cache_evictions"
WHATIF_CACHE_HIT_RATE = "whatif_cache_hit_rate"
WHATIF_CACHE_SIZE = "whatif_cache_size"
#: fraction of positive-frequency forecast templates the last scenario
#: pricing could actually price (a sample query existed); below 1.0 the
#: scenario cost silently underestimates the workload
WHATIF_SCENARIO_COVERAGE = "whatif_scenario_coverage"

# compiled-plan cache KPIs (see repro.plan.planner). The counter names
# are owned by the planner — the plan layer sits below the DBMS substrate
# and cannot import this package — and are re-exported here so KPI
# consumers have one import site; the monitor derives the interval hit
# rate from the counters.
from repro.plan.planner import (  # noqa: E402, F401  (re-export)
    PLAN_CACHE_EVICTIONS,
    PLAN_CACHE_HITS,
    PLAN_CACHE_INVALIDATIONS,
    PLAN_CACHE_MISSES,
    PLAN_CACHE_SIZE,
    PLAN_COMPILE_CHUNKS,
    PLAN_COMPILES,
)

PLAN_CACHE_HIT_RATE = "plan_cache_hit_rate"

# fault/recovery counters (tuning-loop robustness; see repro.faults and
# docs/robustness.md). The injector owns the faults_* names, the
# failure-aware executors the action_*/rollback* names, and the
# organizer's feature quarantine the quarantine_* names. All live in the
# shared telemetry MetricRegistry, so `python -m repro trace` and the
# organizer's per-pass interval reads see them without bespoke wiring.
FAULTS_INJECTED = "faults_injected"
FAULTS_TRANSIENT = "faults_transient"
FAULTS_PERMANENT = "faults_permanent"
FAULT_LATENCY_SPIKES = "fault_latency_spikes"
FAULT_PROBE_SPIKES = "fault_probe_spikes"
ACTION_RETRIES = "action_retries"
ACTION_FAILURES = "action_failures"
ROLLBACKS = "rollbacks"
ROLLBACK_ACTIONS = "rollback_actions"
QUARANTINE_OPENED = "quarantine_opened"
QUARANTINE_CLOSED = "quarantine_closed"

FAULT_KPIS = (
    FAULTS_INJECTED,
    FAULTS_TRANSIENT,
    FAULTS_PERMANENT,
    FAULT_LATENCY_SPIKES,
    FAULT_PROBE_SPIKES,
    ACTION_RETRIES,
    ACTION_FAILURES,
    ROLLBACKS,
    ROLLBACK_ACTIONS,
    QUARANTINE_OPENED,
    QUARANTINE_CLOSED,
)

# fleet fault-tolerance counters (process-level robustness; see
# repro.fleet.checkpoint, repro.fleet.parallel and docs/robustness.md).
# Unlike the tenant-scoped names above, these live in the FleetDriver's
# own fleet-level registry: checkpoint writes and worker restarts are
# properties of the control plane, not of any tenant, and keeping them
# out of the tenant registries preserves the bit-identity of tenant
# counter rollups between checkpointed and checkpoint-free runs.
CHECKPOINT_WRITES = "checkpoint_writes"
CHECKPOINT_BYTES = "checkpoint_bytes"
#: host milliseconds spent inside the checkpoint path (capture-or-reuse
#: plus the durable write) — the numerator of the overhead claim in E21
CHECKPOINT_WRITE_MS = "checkpoint_write_ms"
CHECKPOINT_RESTORES = "checkpoint_restores"
CHECKPOINT_CORRUPTIONS_DETECTED = "checkpoint_corruptions_detected"
WORKER_RESTARTS = "worker_restarts"
WORKER_HARD_KILLS = "worker_hard_kills"
FLEET_TENANT_QUARANTINES = "fleet_tenant_quarantines"
# chaos-injected fault classes (owned by the FaultInjector, counted in
# whatever registry the chaos injector was built with)
FAULT_WORKER_CRASHES = "fault_worker_crashes"
FAULT_CHECKPOINT_CORRUPTIONS = "fault_checkpoint_corruptions"

FLEET_FAULT_KPIS = (
    CHECKPOINT_WRITES,
    CHECKPOINT_BYTES,
    CHECKPOINT_WRITE_MS,
    CHECKPOINT_RESTORES,
    CHECKPOINT_CORRUPTIONS_DETECTED,
    WORKER_RESTARTS,
    WORKER_HARD_KILLS,
    FLEET_TENANT_QUARANTINES,
    FAULT_WORKER_CRASHES,
    FAULT_CHECKPOINT_CORRUPTIONS,
)

# guarded-commit counters (decision-level robustness; see repro.guard and
# docs/robustness.md). The commit guard owns all guard_* names; they live
# in the shared telemetry MetricRegistry like the fault counters above.
GUARD_COMMITS = "guard_commits"
GUARD_PASSED = "guard_passed"
GUARD_SUPERSEDED = "guard_superseded"
GUARD_REGRESSIONS = "guard_regressions"
GUARD_ROLLBACKS = "guard_rollbacks"
GUARD_FORECAST_MISSES = "guard_forecast_misses"
GUARD_ESCALATIONS = "guard_escalations"

GUARD_KPIS = (
    GUARD_COMMITS,
    GUARD_PASSED,
    GUARD_SUPERSEDED,
    GUARD_REGRESSIONS,
    GUARD_ROLLBACKS,
    GUARD_FORECAST_MISSES,
    GUARD_ESCALATIONS,
)

# policy-engine counters (goal-driven planning; see repro.policy and
# docs/policy.md). The engine owns all policy_* names; they live in the
# shared telemetry MetricRegistry like the fault and guard counters.
POLICY_EVALUATIONS = "policy_evaluations"
POLICY_VIOLATIONS = "policy_violations"
POLICY_STEPS_PROPOSED = "policy_steps_proposed"
POLICY_PLANS_EVALUATED = "policy_plans_evaluated"
POLICY_PLANS_EXECUTED = "policy_plans_executed"
POLICY_PLANS_INFEASIBLE = "policy_plans_infeasible"
POLICY_REPLANS = "policy_replans"

POLICY_KPIS = (
    POLICY_EVALUATIONS,
    POLICY_VIOLATIONS,
    POLICY_STEPS_PROPOSED,
    POLICY_PLANS_EVALUATED,
    POLICY_PLANS_EXECUTED,
    POLICY_PLANS_INFEASIBLE,
    POLICY_REPLANS,
)

# system-specific KPIs (simulated hardware view)
CPU_UTILIZATION = "cpu_utilization"
MEMORY_UTILIZATION = "memory_utilization"
CACHE_MISS_RATE = "cache_miss_rate"

DBMS_KPIS = (
    MEAN_QUERY_MS,
    P99_QUERY_MS,
    THROUGHPUT_QPS,
    TOTAL_QUERY_MS,
    QUERIES_EXECUTED,
    RECONFIGURATION_MS,
    INDEX_MEMORY_BYTES,
    MEMORY_BYTES,
    WHATIF_CACHE_HITS,
    WHATIF_CACHE_MISSES,
    WHATIF_CACHE_EVICTIONS,
    WHATIF_CACHE_HIT_RATE,
    WHATIF_CACHE_SIZE,
    WHATIF_SCENARIO_COVERAGE,
    PLAN_COMPILES,
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    PLAN_CACHE_EVICTIONS,
    PLAN_CACHE_INVALIDATIONS,
    PLAN_CACHE_HIT_RATE,
    PLAN_CACHE_SIZE,
)
SYSTEM_KPIS = (CPU_UTILIZATION, MEMORY_UTILIZATION, CACHE_MISS_RATE)


@dataclass(frozen=True)
class KPISample:
    """All KPI values at one sampling instant."""

    at_ms: float
    values: dict[str, float] = field(default_factory=dict)

    def get(self, metric: str, default: float = 0.0) -> float:
        return self.values.get(metric, default)
