"""Runtime KPIs: definitions, derivation, and the monitor component."""

from repro.kpi.metrics import (
    CACHE_MISS_RATE,
    CPU_UTILIZATION,
    DBMS_KPIS,
    INDEX_MEMORY_BYTES,
    MEAN_QUERY_MS,
    MEMORY_BYTES,
    MEMORY_UTILIZATION,
    P99_QUERY_MS,
    POLICY_KPIS,
    QUERIES_EXECUTED,
    RECONFIGURATION_MS,
    SYSTEM_KPIS,
    THROUGHPUT_QPS,
    TOTAL_QUERY_MS,
    KPISample,
)
from repro.kpi.monitor import RuntimeKPIMonitor
from repro.kpi.system import derive_system_kpis

__all__ = [
    "CACHE_MISS_RATE",
    "CPU_UTILIZATION",
    "DBMS_KPIS",
    "INDEX_MEMORY_BYTES",
    "KPISample",
    "MEAN_QUERY_MS",
    "MEMORY_BYTES",
    "MEMORY_UTILIZATION",
    "P99_QUERY_MS",
    "POLICY_KPIS",
    "QUERIES_EXECUTED",
    "RECONFIGURATION_MS",
    "RuntimeKPIMonitor",
    "SYSTEM_KPIS",
    "THROUGHPUT_QPS",
    "TOTAL_QUERY_MS",
    "derive_system_kpis",
]
