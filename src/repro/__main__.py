"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``        — package, component, and feature inventory;
- ``simulate``    — run a closed-loop self-management simulation over the
                    retail (or telemetry) workload and print per-bin stats
                    plus the self-management log;
- ``fleet``       — run N skewed tenants under the fleet organizer and
                    print per-tenant stats plus the fleet rollup (priors
                    harvested, replays applied, arbitration record);
- ``order``       — measure the feature dependence matrix on a fresh suite
                    and print the LP-optimized tuning order;
- ``trace``       — run a short warm-up, force one tuning pass, and dump
                    its telemetry span tree plus the metric registry;
- ``faults``      — run the closed loop twice, fault-free and under a
                    seeded failure rate, and compare convergence plus the
                    fault/rollback/quarantine record;
- ``guard``       — run the closed loop with a mid-trace dominance swap
                    and print the guarded-commit record: probation
                    ledger, forecast-miss escalations, and GUARD events;
- ``policy``      — run the closed loop under declared objectives (p99 /
                    mean latency, memory budget, throughput floor) and
                    print the POLICY plan record plus the final
                    objective status;
- ``components``  — list every registered exchangeable component.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_info(args: argparse.Namespace) -> int:
    del args
    from repro.core.component import default_registry

    registry = default_registry()
    print(f"repro {__version__} — reproduction of Kossmann & Schlosser, "
          "'A Framework for Self-Managing Database Systems' (ICDEW 2019)")
    print()
    for kind in registry.kinds():
        names = ", ".join(registry.names(kind))
        print(f"  {kind:15s} {names}")
    print()
    print("suites: retail (orders+inventory), telemetry (readings)")
    print("docs:   README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_components(args: argparse.Namespace) -> int:
    from repro.core.component import default_registry

    registry = default_registry()
    kind = args.kind
    kinds = [kind] if kind else registry.kinds()
    for k in kinds:
        for name in registry.names(k):
            print(f"{k}\t{name}")
    return 0


def _build_suite(name: str, rows: int, seed: int):
    from repro.workload import build_retail_suite, build_telemetry_suite

    if name == "retail":
        return build_retail_suite(
            orders_rows=rows, inventory_rows=rows // 4, seed=seed
        )
    if name == "telemetry":
        return build_telemetry_suite(rows=rows, seed=seed)
    raise SystemExit(f"unknown suite {name!r} (retail | telemetry)")


def _build_features(args: argparse.Namespace):
    """The standard feature list, shaped by the common CLI flags."""
    from repro.tuning import standard_features

    features = standard_features(include_sort_order=args.sort_order)
    return features[: args.features] if args.features else features


def _bootstrap(
    args: argparse.Namespace,
    triggers=None,
    organizer=None,
    faults=None,
    telemetry=None,
    policy=None,
    mutate_trace=None,
):
    """Shared driver/simulation bootstrap of the closed-loop subcommands.

    Builds the suite, the binned trace (optionally transformed by
    ``mutate_trace(suite, trace)`` — e.g. the guard command's dominance
    swap), the driver with the common constraint/feature flags, attaches
    it, and returns ``(suite, db, trace, driver, simulation)``.
    """
    from repro import (
        ClosedLoopSimulation,
        ConstraintSet,
        Driver,
        DriverConfig,
        OrganizerConfig,
        ResourceBudget,
        TelemetryConfig,
    )
    from repro.configuration import INDEX_MEMORY
    from repro.util.units import MIB
    from repro.workload import generate_trace

    suite = _build_suite(args.suite, args.rows, args.seed)
    db = suite.database
    trace = generate_trace(
        suite.families,
        suite.rates,
        args.bins,
        bin_duration_ms=60_000,
        seed=args.seed,
    )
    if mutate_trace is not None:
        trace = mutate_trace(suite, trace)
    driver = Driver(
        _build_features(args),
        constraints=ConstraintSet(
            [ResourceBudget(INDEX_MEMORY, args.index_budget_mib * MIB)]
        ),
        triggers=triggers,
        config=DriverConfig(
            organizer=organizer
            or OrganizerConfig(horizon_bins=4, min_history_bins=4),
            faults=faults,
            telemetry=telemetry or TelemetryConfig(),
            policy=policy,
        ),
    )
    db.plugin_host.attach(driver)
    simulation = ClosedLoopSimulation(db, trace, seed=args.seed)
    return suite, db, trace, driver, simulation


def _print_bins(records) -> None:
    print("bin  queries  mean_ms   tuned")
    for record in records:
        marker = "  *" if record.reconfigured else ""
        print(f"{record.index:3d}  {record.queries_executed:7d}  "
              f"{record.mean_query_ms:8.4f}{marker}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import OrganizerConfig
    from repro.core import EventKind, ForecastDriftTrigger, PeriodicTrigger
    from repro.util.units import MIB

    _, db, _, driver, simulation = _bootstrap(
        args,
        triggers=[
            PeriodicTrigger(every_ms=args.tune_every_bins * 60_000),
            ForecastDriftTrigger(relative_threshold=0.25),
        ],
        organizer=OrganizerConfig(
            horizon_bins=4, min_history_bins=4, cooldown_ms=3 * 60_000
        ),
    )

    print(f"simulating {args.bins} bins of the {args.suite} workload "
          f"({db.catalog.table_names()}, {args.rows} rows)")
    _print_bins(simulation.run())

    print("\nself-management log:")
    for event in driver.events.events():
        if event.kind in (EventKind.ORDER_PLANNED, EventKind.TUNING_FINISHED):
            print(f"  [{event.at_ms / 60_000:5.1f} min] {event.message}")
    print(f"\nindex memory: {db.index_bytes() / MIB:.2f} MiB; "
          f"reconfigurations: {db.counters.reconfigurations}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetConfig, FleetDriver, build_fleet
    from repro.util.tables import render_table

    if args.resume and not args.checkpoint_dir:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every needs --checkpoint-dir", file=sys.stderr)
        return 2
    config = FleetConfig(
        share_priors=not args.no_priors,
        arbitrate=not args.no_arbitrate,
        max_concurrent_reconfigurations=args.max_concurrent,
    )
    if args.resume:
        fleet = FleetDriver.resume(
            args.checkpoint_dir,
            parallel=args.parallel,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
        print(f"fleet: resumed from {args.checkpoint_dir} at bin "
              f"{fleet.next_bin} ({len(fleet.tenants)} tenants, "
              f"{fleet.n_bins} bins total)")
    else:
        fleet = build_fleet(
            args.tenants,
            skew=args.skew,
            seed=args.seed,
            bins=args.bins,
            rows=args.rows,
            suite=args.suite,
            config=config,
            tune_every_bins=args.tune_every_bins,
            index_budget_mib=args.index_budget_mib,
            parallel=args.parallel,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
        mode = "" if args.parallel == "serial" else f", {args.parallel} mode"
        print(f"fleet: {args.tenants} tenants over the {args.suite} "
              f"workload, skew {args.skew}, {args.bins} bins, "
              f"seed {args.seed}{mode}")
    report = fleet.run()

    print()
    print(render_table(
        ["tenant", "profile", "scale", "queries", "mean_ms", "final_ms",
         "passes", "replays", "reconfigs"],
        [[s.tenant, s.profile, round(s.volume_scale, 3), s.queries,
          round(s.mean_query_ms, 4), round(s.final_mean_query_ms, 4),
          s.full_passes, s.replays, s.reconfigurations]
         for s in report.summaries],
    ))

    arb = report.arbitration
    print(f"\nfleet rollup: {report.total_queries} queries, "
          f"{arb['full_passes']} full tuning passes, "
          f"{arb['replays_applied']} prior replays applied "
          f"({arb['replays_rejected']} rejected), "
          f"{arb['priors']} priors harvested")
    print(f"what-if cache (all tenants): {report.whatif.hits} hits, "
          f"{report.whatif.misses} misses "
          f"({report.whatif.hit_rate:.0%} hit rate)")
    print(f"plan cache (all tenants): {report.plan.hits} hits, "
          f"{report.plan.misses} misses "
          f"({report.plan.hit_rate:.0%} hit rate)")

    if args.checkpoint_dir:
        fc = report.fleet_counters
        print(f"checkpoints: {fc.get('checkpoint_writes', 0):.0f} written "
              f"({fc.get('checkpoint_bytes', 0):.0f} bytes) to "
              f"{args.checkpoint_dir}, "
              f"{fc.get('checkpoint_restores', 0):.0f} restored, "
              f"{fc.get('worker_restarts', 0):.0f} worker restarts, "
              f"{fc.get('fleet_tenant_quarantines', 0):.0f} quarantines")

    if report.replay_outcomes:
        print("\nprior replays:")
        for o in report.replay_outcomes:
            print(f"  prior #{o.prior_id} {o.source} -> {o.tenant}: "
                  f"{o.reason}")
    return 0


def _cmd_order(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import ConstraintSet, RecursiveTuningPlanner, ResourceBudget, Tuner
    from repro.configuration import INDEX_MEMORY
    from repro.forecasting.scenarios import point_forecast
    from repro.tuning import standard_features
    from repro.util.tables import render_table
    from repro.util.units import MIB

    suite = _build_suite(args.suite, args.rows, args.seed)
    db = suite.database
    rng = np.random.default_rng(args.seed)
    samples = {}
    frequencies = {}
    for family in suite.families.values():
        query = family.sample(rng)
        samples[query.template().key] = query
        frequencies[query.template().key] = 10.0
    forecast = point_forecast(frequencies, samples)

    features = standard_features(include_sort_order=args.sort_order)
    if args.features:
        features = features[: args.features]
    tuners = [Tuner(feature, db) for feature in features]
    constraints = ConstraintSet(
        [ResourceBudget(INDEX_MEMORY, args.index_budget_mib * MIB)]
    )
    planner = RecursiveTuningPlanner(db, tuners, constraints)
    print(f"measuring dependence matrix over {len(tuners)} features ...")
    matrix, solution = planner.plan_order(forecast)
    print(f"\nW_0 = {matrix.w_empty:.3f} ms\n")
    print(render_table(
        ["feature", "W_A_ms", "impact", "tuning_cost_ms"],
        [[f, round(matrix.w_single[f], 3), round(matrix.impact(f), 3),
          round(matrix.tuning_cost_ms[f], 2)] for f in matrix.features],
    ))
    print()
    print(render_table(
        ["A", "B", "d_AB", "tune first"],
        [[a, b, round(matrix.d(a, b), 4),
          a if matrix.d(a, b) > 1 else (b if matrix.d(a, b) < 1 else "-")]
         for a in matrix.features for b in matrix.features if a < b],
    ))
    print(f"\nLP order ({solution.n_variables} vars, "
          f"{solution.n_constraints} constraints, "
          f"{solution.solve_seconds * 1e3:.1f} ms): "
          f"{' -> '.join(solution.order)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import TelemetryConfig, render_span_tree

    _, db, _, driver, simulation = _bootstrap(
        args,
        telemetry=TelemetryConfig(
            query_sample_every=args.sample_every,
            jsonl_path=args.jsonl,
        ),
    )

    print(f"warming up: {args.bins} bins of the {args.suite} workload ...")
    for _ in simulation.run():
        pass
    report = driver.tune_now()
    if report is None:
        print("tuning pass skipped (time budget admits no feature)")
        return 1
    span = driver.telemetry.tracer.last_root("tuning_pass")
    if span is None:
        print("no tuning_pass span recorded — is telemetry disabled?")
        return 1

    print(f"\nspan tree of the last tuning pass "
          f"(order: {' -> '.join(report.order)}):\n")
    print(render_span_tree(span))

    print("\nmetric registry:")
    registry = driver.telemetry.registry
    counters = registry.snapshot_counters()
    gauges = registry.snapshot_gauges()
    width = max(map(len, [*counters, *gauges] or [""])) + 2
    for name in sorted(counters):
        print(f"  {name:{width}s} {counters[name]:.0f}")
    for name in sorted(gauges):
        print(f"  {name:{width}s} {gauges[name]:.0f}  (gauge)")

    sampled = int(counters.get("exec_sampled_spans", 0.0))
    total = int(counters.get("exec_queries", 0.0))
    rate = (
        f"1 in {args.sample_every}" if args.sample_every > 0
        else "sampling off"
    )
    print(f"\nsampled query spans: {sampled} of {total} queries ({rate})")

    stats = db.planner.cache_stats
    print(
        f"compiled-plan cache: {stats.hits} hits, {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate), {stats.size} plans cached "
        f"at plan epoch {db.plan_epoch}"
    )
    if args.jsonl:
        driver.telemetry.close()
        print(f"telemetry records exported to {args.jsonl}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro import FaultConfig, OrganizerConfig
    from repro.core import EventKind, PeriodicTrigger
    from repro.kpi.metrics import FAULT_KPIS

    def run(faults):
        _, _, _, driver, simulation = _bootstrap(
            args,
            triggers=[
                PeriodicTrigger(every_ms=args.tune_every_bins * 60_000)
            ],
            organizer=OrganizerConfig(horizon_bins=3, min_history_bins=3),
            faults=faults,
        )
        return simulation.run(), driver

    faults = FaultConfig(
        seed=args.fault_seed,
        failure_rate=args.failure_rate,
        transient_fraction=args.transient_fraction,
    )
    print(f"fault-free run: {args.bins} bins of the {args.suite} workload ...")
    clean_records, _ = run(None)
    print(f"faulty run: failure rate {args.failure_rate:.0%}, "
          f"transient fraction {args.transient_fraction:.0%}, "
          f"fault seed {args.fault_seed} ...")
    faulty_records, driver = run(faults)

    print("\nbin  queries  clean_ms  faulty_ms  tuned")
    for clean, faulty in zip(clean_records, faulty_records):
        marker = "  *" if faulty.reconfigured else ""
        print(f"{faulty.index:3d}  {faulty.queries_executed:7d}  "
              f"{clean.mean_query_ms:8.4f}  {faulty.mean_query_ms:9.4f}"
              f"{marker}")

    tail = max(1, len(clean_records) // 4)
    clean_cost = sum(
        r.mean_query_ms for r in clean_records[-tail:]
    ) / tail
    faulty_cost = sum(
        r.mean_query_ms for r in faulty_records[-tail:]
    ) / tail
    gap = faulty_cost / clean_cost - 1.0 if clean_cost > 0 else 0.0

    print("\nfault record:")
    snap = driver.telemetry.registry.snapshot()
    for name in FAULT_KPIS:
        print(f"  {name:22s} {snap.get(name, 0.0):.0f}")

    shown = [
        e
        for e in driver.events.events()
        if e.kind in (EventKind.FAULT, EventKind.ROLLBACK,
                      EventKind.QUARANTINE)
    ]
    if shown:
        print("\nfault / rollback / quarantine events:")
        for event in shown:
            print(f"  [{event.at_ms / 60_000:5.1f} min] "
                  f"{event.kind.value:10s} {event.message}")

    print(f"\nfinal cost (mean over the last {tail} bins): "
          f"{clean_cost:.4f} ms fault-free vs {faulty_cost:.4f} ms "
          f"faulty ({100 * gap:+.2f}%)")
    return 0


def _swap_dominance_hook(args: argparse.Namespace, swapped: dict):
    """A ``mutate_trace`` hook swapping family dominance mid-trace;
    records the swapped pair in ``swapped`` for the caller's banner."""
    from repro.workload.drift import swap_dominance

    def mutate(suite, trace):
        if args.swap_at <= 0:
            return trace
        by_rate = sorted(suite.rates, key=lambda n: suite.rates[n].base)
        family_a = args.swap_a or by_rate[-1]
        family_b = args.swap_b or by_rate[0]
        swapped["pair"] = (family_a, family_b)
        return swap_dominance(trace, family_a, family_b, args.swap_at)

    return mutate


def _cmd_guard(args: argparse.Namespace) -> int:
    from repro.core import EventKind, PeriodicTrigger
    from repro.kpi.metrics import GUARD_KPIS

    swapped: dict = {}
    _, _, _, driver, simulation = _bootstrap(
        args,
        triggers=[PeriodicTrigger(every_ms=args.tune_every_bins * 60_000)],
        mutate_trace=_swap_dominance_hook(args, swapped),
    )

    print(f"simulating {args.bins} bins of the {args.suite} workload "
          "under the commit guard")
    if swapped:
        pair = swapped["pair"]
        print(f"dominance swap at bin {args.swap_at}: "
              f"{pair[0]} <-> {pair[1]}")
    _print_bins(simulation.run())

    print("\nguard record:")
    snap = driver.telemetry.registry.snapshot()
    for name in GUARD_KPIS:
        print(f"  {name:22s} {snap.get(name, 0.0):.0f}")

    ledger = driver.organizer.guard.ledger.snapshot()
    if ledger:
        print("\ncommit ledger:")
        for entry in ledger:
            print(f"  commit #{entry['commit_id']} at "
                  f"{entry['committed_at_ms'] / 60_000:5.1f} min: "
                  f"{entry['resolution']} "
                  f"({entry['inverse_actions']} inverse actions retained, "
                  f"baseline {entry['baseline_ms']:.3f} ms)")

    shown = [
        e
        for e in driver.events.events()
        if e.kind in (EventKind.GUARD, EventKind.ROLLBACK,
                      EventKind.QUARANTINE)
    ]
    if shown:
        print("\nguard / rollback / quarantine events:")
        for event in shown:
            print(f"  [{event.at_ms / 60_000:5.1f} min] "
                  f"{event.kind.value:10s} {event.message}")
    return 0


def _policy_config(args: argparse.Namespace):
    """Build a PolicyConfig from --objectives YAML or the inline flags."""
    from repro.policy import ObjectiveSpec, PolicyConfig
    from repro.util.units import MIB

    if args.objectives:
        return PolicyConfig.from_yaml_file(args.objectives)
    specs = []
    if args.p99_ms is not None:
        specs.append(ObjectiveSpec(kind="latency", bound=args.p99_ms))
    if args.mean_ms is not None:
        specs.append(
            ObjectiveSpec(
                kind="latency", bound=args.mean_ms, metric="mean_query_ms"
            )
        )
    if args.memory_mib is not None:
        specs.append(
            ObjectiveSpec(kind="memory", bound=args.memory_mib * MIB)
        )
    if args.min_qps is not None:
        specs.append(ObjectiveSpec(kind="throughput", bound=args.min_qps))
    if not specs:
        raise SystemExit(
            "declare at least one objective (--p99-ms / --mean-ms / "
            "--memory-mib / --min-qps) or pass --objectives <yaml>"
        )
    return PolicyConfig(
        objectives=tuple(specs),
        violation_patience=args.patience,
    )


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.core import EventKind
    from repro.kpi.metrics import POLICY_KPIS

    config = _policy_config(args)
    _, db, _, driver, simulation = _bootstrap(args, policy=config)

    names = ", ".join(o.name or o.kind for o in config.objectives)
    print(f"simulating {args.bins} bins of the {args.suite} workload "
          f"under declared objectives: {names}")
    _print_bins(simulation.run())

    shown = [
        e for e in driver.events.events() if e.kind == EventKind.POLICY
    ]
    if shown:
        print("\npolicy events:")
        for event in shown:
            print(f"  [{event.at_ms / 60_000:5.1f} min] {event.message}")

    print("\npolicy record:")
    snap = driver.telemetry.registry.snapshot()
    for name in POLICY_KPIS:
        print(f"  {name:24s} {snap.get(name, 0.0):.0f}")

    assessment = driver.organizer.policy_status()
    print("\nfinal objective status:")
    for status in assessment.statuses:
        verdict = "met    " if status.satisfied else "VIOLATED"
        print(f"  {verdict} {status.name}: {status.detail} "
              f"(margin {status.margin:+.2%})")
    print(f"  composite score: {assessment.score:+.4f}")
    return 0 if assessment.satisfied else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Self-managing database framework (ICDEW'19 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="package inventory").set_defaults(
        run=_cmd_info
    )

    components = commands.add_parser(
        "components", help="list registered components"
    )
    components.add_argument("kind", nargs="?", default=None)
    components.set_defaults(run=_cmd_components)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--suite", default="retail",
                         choices=("retail", "telemetry"))
        sub.add_argument("--rows", type=int, default=40_000)
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--features", type=int, default=0,
                         help="use only the first N standard features")
        sub.add_argument("--sort-order", action="store_true",
                         help="include the sort-order feature")
        sub.add_argument("--index-budget-mib", type=float, default=4.0)

    simulate = commands.add_parser(
        "simulate", help="run a closed-loop self-management simulation"
    )
    common(simulate)
    simulate.add_argument("--bins", type=int, default=24)
    simulate.add_argument("--tune-every-bins", type=int, default=8)
    simulate.set_defaults(run=_cmd_simulate)

    fleet = commands.add_parser(
        "fleet", help="run a multi-tenant fleet with shared tuning priors"
    )
    fleet.add_argument("--tenants", type=int, default=4)
    fleet.add_argument("--skew", type=float, default=0.8,
                       help="Zipf volume skew (tenant i scaled (i+1)^-skew)")
    fleet.add_argument("--suite", default="retail",
                       choices=("retail", "telemetry"))
    fleet.add_argument("--rows", type=int, default=20_000)
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--bins", type=int, default=24)
    fleet.add_argument("--tune-every-bins", type=int, default=6)
    fleet.add_argument("--index-budget-mib", type=float, default=64.0)
    fleet.add_argument("--max-concurrent", type=int, default=3,
                       help="fleet-wide cap on concurrent reconfigurations")
    fleet.add_argument("--no-priors", action="store_true",
                       help="disable prior sharing (independent tuning)")
    fleet.add_argument("--no-arbitrate", action="store_true",
                       help="disable admission arbitration")
    fleet.add_argument("--parallel", default="serial",
                       choices=["serial", "thread", "process"],
                       help="execution mode for tenant bins (results are "
                            "bit-identical across modes)")
    fleet.add_argument("--checkpoint-dir", default=None,
                       help="directory for durable fleet checkpoints")
    fleet.add_argument("--checkpoint-every", type=int, default=0,
                       help="write a checkpoint every N bins (0 = off; "
                            "needs --checkpoint-dir)")
    fleet.add_argument("--resume", action="store_true",
                       help="resume from the newest checkpoint in "
                            "--checkpoint-dir instead of starting fresh")
    fleet.add_argument("--workers", type=int, default=None,
                       help="process-mode worker count (default: cpu count, "
                            "capped at the tenant count)")
    fleet.set_defaults(run=_cmd_fleet)

    order = commands.add_parser(
        "order", help="measure dependencies and print the LP tuning order"
    )
    common(order)
    order.set_defaults(run=_cmd_order)

    trace = commands.add_parser(
        "trace", help="dump the telemetry span tree of a forced tuning pass"
    )
    common(trace)
    trace.add_argument("--bins", type=int, default=8,
                       help="warm-up bins before the forced pass")
    trace.add_argument("--sample-every", type=int, default=64,
                       help="sample one query span per N queries (0 = off)")
    trace.add_argument("--jsonl", default=None,
                       help="also export every telemetry record to this file")
    trace.set_defaults(run=_cmd_trace)

    faults = commands.add_parser(
        "faults", help="compare fault-free and faulty closed-loop runs"
    )
    common(faults)
    faults.add_argument("--bins", type=int, default=24)
    faults.add_argument("--tune-every-bins", type=int, default=3)
    faults.add_argument("--failure-rate", type=float, default=0.10,
                        help="per-action injected failure probability")
    faults.add_argument("--transient-fraction", type=float, default=0.75,
                        help="fraction of failures that are retryable")
    faults.add_argument("--fault-seed", type=int, default=2,
                        help="seed of the fault injector's random stream")
    faults.set_defaults(run=_cmd_faults)

    guard = commands.add_parser(
        "guard", help="show the guarded-commit record of a drifting run"
    )
    common(guard)
    guard.add_argument("--bins", type=int, default=24)
    guard.add_argument("--tune-every-bins", type=int, default=8)
    guard.add_argument("--swap-at", type=int, default=12,
                       help="swap family dominance at this bin (0 = off)")
    guard.add_argument("--swap-a", default=None,
                       help="first swapped family (default: highest rate)")
    guard.add_argument("--swap-b", default=None,
                       help="second swapped family (default: lowest rate)")
    guard.set_defaults(run=_cmd_guard)

    policy = commands.add_parser(
        "policy", help="run the closed loop under declared objectives"
    )
    common(policy)
    policy.add_argument("--bins", type=int, default=24)
    policy.add_argument("--p99-ms", type=float, default=None,
                        help="p99 query latency bound (ms)")
    policy.add_argument("--mean-ms", type=float, default=None,
                        help="mean query latency bound (ms)")
    policy.add_argument("--memory-mib", type=float, default=None,
                        help="index memory budget objective (MiB)")
    policy.add_argument("--min-qps", type=float, default=None,
                        help="throughput floor (queries/second)")
    policy.add_argument("--patience", type=int, default=2,
                        help="consecutive violated evaluations before the "
                             "objective trigger fires")
    policy.add_argument("--objectives", default=None,
                        help="YAML file declaring the objectives "
                             "(overrides the inline flags)")
    policy.set_defaults(run=_cmd_policy)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
