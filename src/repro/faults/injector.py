"""Deterministic, seeded fault injection for the tuning loop.

The self-managing loop must survive its *own* reconfiguration actions
failing: a half-applied tuning pass is strictly worse than no pass at
all. The :class:`FaultInjector` makes that failure mode testable on
every run by rolling seeded dice in front of each action application
(and, optionally, perturbing what-if probe measurements with latency
spikes). Faults come in two classes:

- **transient** — lock timeouts, resource spikes; worth retrying with
  backoff (:class:`~repro.faults.recovery.RetryPolicy`);
- **permanent** — out of memory, corrupted structure; the surrounding
  pass must be rolled back and the feature may be quarantined
  (:class:`~repro.faults.quarantine.FeatureQuarantine`).

Determinism: all draws flow through one generator seeded via
:func:`repro.util.rng.derive_rng`, so the same seed and the same call
sequence produce the same fault schedule — experiments with faults are
as reproducible as experiments without them.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ActionError
from repro.kpi.metrics import (
    FAULT_CHECKPOINT_CORRUPTIONS,
    FAULT_LATENCY_SPIKES,
    FAULT_PROBE_SPIKES,
    FAULT_WORKER_CRASHES,
    FAULTS_INJECTED,
    FAULTS_PERMANENT,
    FAULTS_TRANSIENT,
)
from repro.telemetry.metrics import MetricRegistry
from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from repro.configuration.actions import Action


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault injector.

    ``per_action_failure_rate`` overrides ``failure_rate`` per action
    class, keyed by the class name (e.g. ``"CreateIndexAction"``), so
    experiments can make index builds flaky while knob flips stay safe.
    """

    #: seed of the injector's private random stream
    seed: int = 0
    #: probability that one action application fails
    failure_rate: float = 0.0
    #: action class name → failure probability override
    per_action_failure_rate: Mapping[str, float] = field(default_factory=dict)
    #: fraction of injected failures that are transient (retryable)
    transient_fraction: float = 0.75
    #: probability that a surviving application takes a latency spike
    latency_spike_rate: float = 0.0
    #: extra simulated milliseconds added by one application spike
    latency_spike_ms: float = 250.0
    #: probability that one what-if probe measurement takes a spike
    probe_spike_rate: float = 0.0
    #: extra simulated milliseconds added to one spiked probe cost
    probe_spike_ms: float = 5.0
    #: probability that one fleet bin loses a worker process (process
    #: mode: the chosen worker is SIGKILLed mid-bin and supervision
    #: must recover; see repro.fleet.parallel)
    worker_crash_rate: float = 0.0
    #: probability that one checkpoint write corrupts one tenant's
    #: snapshot blob on disk (restore must detect it via the per-tenant
    #: checksum; see repro.fleet.checkpoint)
    checkpoint_corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("failure_rate", self.failure_rate)
        _check_rate("transient_fraction", self.transient_fraction)
        _check_rate("latency_spike_rate", self.latency_spike_rate)
        _check_rate("probe_spike_rate", self.probe_spike_rate)
        _check_rate("worker_crash_rate", self.worker_crash_rate)
        _check_rate(
            "checkpoint_corruption_rate", self.checkpoint_corruption_rate
        )
        for name, rate in self.per_action_failure_rate.items():
            _check_rate(f"per_action_failure_rate[{name!r}]", rate)
        if self.latency_spike_ms < 0 or self.probe_spike_ms < 0:
            raise ValueError("spike durations must be non-negative")


class FaultInjector:
    """Rolls seeded dice in front of action applications and probes.

    The failure-aware tuning executors call :meth:`before_apply` once
    per application attempt; the what-if optimizer calls
    :meth:`probe_spike_ms` once per measured probe. Counters for every
    injected fault live in the given telemetry registry (the driver
    passes its shared one), split by fault class.
    """

    def __init__(
        self,
        config: FaultConfig | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        self.config = config or FaultConfig()
        self._rng = derive_rng(self.config.seed, "fault-injector")
        registry = registry if registry is not None else MetricRegistry()
        self._registry = registry
        self._injected = registry.counter(FAULTS_INJECTED)
        self._transient = registry.counter(FAULTS_TRANSIENT)
        self._permanent = registry.counter(FAULTS_PERMANENT)
        self._spikes = registry.counter(FAULT_LATENCY_SPIKES)
        self._probe_spikes = registry.counter(FAULT_PROBE_SPIKES)
        self._worker_crashes = registry.counter(FAULT_WORKER_CRASHES)
        self._ckpt_corruptions = registry.counter(
            FAULT_CHECKPOINT_CORRUPTIONS
        )

    @property
    def registry(self) -> MetricRegistry:
        return self._registry

    def _failure_rate_for(self, action: "Action") -> float:
        return self.config.per_action_failure_rate.get(
            type(action).__name__, self.config.failure_rate
        )

    def before_apply(self, action: "Action") -> float:
        """Gate one application attempt of ``action``.

        Returns the extra latency (simulated ms) the attempt should
        cost — 0 normally, ``latency_spike_ms`` on a spike — or raises
        :class:`~repro.errors.ActionError` when the attempt fails.
        Retried attempts roll again, so a transient fault can clear.
        """
        rate = self._failure_rate_for(action)
        if rate > 0.0 and self._rng.random() < rate:
            transient = self._rng.random() < self.config.transient_fraction
            self._injected.inc()
            (self._transient if transient else self._permanent).inc()
            fault_class = "transient" if transient else "permanent"
            raise ActionError(
                f"injected {fault_class} fault applying {action.describe()}",
                action=action.describe(),
                transient=transient,
            )
        if (
            self.config.latency_spike_rate > 0.0
            and self._rng.random() < self.config.latency_spike_rate
        ):
            self._spikes.inc()
            return self.config.latency_spike_ms
        return 0.0

    def probe_spike_ms(self) -> float:
        """Extra simulated ms to add to one measured what-if probe.

        Models measurement noise: a spiked probe's cost (including the
        spike) is what lands in the epoch-keyed cost cache, exactly as a
        noisy measurement would on a loaded production system.
        """
        if (
            self.config.probe_spike_rate > 0.0
            and self._rng.random() < self.config.probe_spike_rate
        ):
            self._probe_spikes.inc()
            return self.config.probe_spike_ms
        return 0.0

    # ------------------------------------------------------------------
    # process-level fault classes (the fleet chaos harness)
    #
    # Unlike the action-level dice above, these draw from a *per-bin*
    # (or per-epoch) derived stream rather than the injector's shared
    # sequential one: crash recovery deterministically re-executes the
    # interrupted bin, and a re-rolled shared stream would either kill
    # the replacement worker forever or silently shift every later
    # fault. Deriving from ``(seed, bin)`` makes the schedule a pure
    # function of the bin index — stable under re-execution and resume.

    def worker_crash(self, bin_index: int, n_workers: int) -> int | None:
        """Which worker (if any) the chaos schedule kills at this bin.

        Returns a worker index in ``[0, n_workers)`` or ``None``. The
        caller (the fleet driver) delivers the actual SIGKILL once per
        bin; re-asking for the same bin returns the same answer.
        """
        if self.config.worker_crash_rate <= 0.0 or n_workers <= 0:
            return None
        rng = derive_rng(self.config.seed, f"worker-crash-bin-{bin_index}")
        if rng.random() >= self.config.worker_crash_rate:
            return None
        self._worker_crashes.inc()
        return int(rng.integers(n_workers))

    def checkpoint_corruption(self, epoch: int, n_parts: int) -> int | None:
        """Which checkpoint part (if any) to corrupt at write ``epoch``.

        Returns the index of the tenant blob the chaos schedule damages
        or ``None``. The checkpoint writer flips bytes in that blob via
        :meth:`corrupt_blob`; the per-tenant checksum stays the honest
        one, so a later restore detects the damage.
        """
        if self.config.checkpoint_corruption_rate <= 0.0 or n_parts <= 0:
            return None
        rng = derive_rng(self.config.seed, f"ckpt-corrupt-epoch-{epoch}")
        if rng.random() >= self.config.checkpoint_corruption_rate:
            return None
        self._ckpt_corruptions.inc()
        return int(rng.integers(n_parts))

    def corrupt_blob(self, blob: bytes, epoch: int) -> bytes:
        """Deterministically damage ``blob`` (seeded byte flips)."""
        if not blob:
            return blob
        rng = derive_rng(self.config.seed, f"ckpt-corrupt-bytes-{epoch}")
        damaged = bytearray(blob)
        flips = max(1, len(damaged) // 1024)
        for _ in range(flips):
            pos = int(rng.integers(len(damaged)))
            damaged[pos] ^= 0xFF
        return bytes(damaged)
