"""Per-feature circuit breaker: graceful degradation of the tuning loop.

A feature whose applications keep failing (a broken enumerator, a
structurally failing action, a hostile fault schedule) must not be
allowed to abort every pass: after ``threshold`` *consecutive* failed
applications the feature is quarantined — excluded from tuning — and
re-admitted on probation once the probation window (simulated time) has
passed. One probation success closes the breaker; one probation failure
re-opens it for another full window. This is the organizer-level
"constraint enforcement" of the paper's Section II-E extended to the
loop's own reliability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kpi.metrics import QUARANTINE_CLOSED, QUARANTINE_OPENED
from repro.telemetry.metrics import MetricRegistry


class QuarantineState(enum.Enum):
    """Circuit-breaker state of one feature."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class Admission(enum.Enum):
    """Outcome of asking whether a feature may be tuned now."""

    #: breaker closed: tune normally
    ADMITTED = "admitted"
    #: probation window elapsed: one trial application is allowed
    PROBATION = "probation"
    #: still quarantined: skip the feature this pass
    QUARANTINED = "quarantined"


@dataclass
class _FeatureState:
    state: QuarantineState = QuarantineState.CLOSED
    consecutive_failures: int = 0
    opened_at_ms: float = 0.0


class FeatureQuarantine:
    """Tracks consecutive application failures per feature."""

    def __init__(
        self,
        threshold: int = 3,
        probation_ms: float = 30 * 60_000.0,
        registry: MetricRegistry | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if probation_ms < 0:
            raise ValueError("probation_ms must be non-negative")
        self.threshold = threshold
        self.probation_ms = probation_ms
        self._states: dict[str, _FeatureState] = {}
        registry = registry if registry is not None else MetricRegistry()
        self._opened = registry.counter(QUARANTINE_OPENED)
        self._closed = registry.counter(QUARANTINE_CLOSED)

    def _state(self, feature: str) -> _FeatureState:
        return self._states.setdefault(feature, _FeatureState())

    # ------------------------------------------------------------------
    # admission

    def admit(self, feature: str, now_ms: float) -> Admission:
        """Decide whether ``feature`` may be tuned at ``now_ms``.

        An OPEN breaker whose probation window has elapsed transitions
        to HALF_OPEN here (and reports :attr:`Admission.PROBATION`), so
        callers learn about re-admissions exactly when they act on them.
        """
        st = self._states.get(feature)
        if st is None or st.state is QuarantineState.CLOSED:
            return Admission.ADMITTED
        if st.state is QuarantineState.OPEN:
            if now_ms - st.opened_at_ms >= self.probation_ms:
                st.state = QuarantineState.HALF_OPEN
                return Admission.PROBATION
            return Admission.QUARANTINED
        return Admission.PROBATION

    def remaining_ms(self, feature: str, now_ms: float) -> float:
        """Simulated ms until an OPEN feature reaches probation (else 0)."""
        st = self._states.get(feature)
        if st is None or st.state is not QuarantineState.OPEN:
            return 0.0
        return max(0.0, st.opened_at_ms + self.probation_ms - now_ms)

    # ------------------------------------------------------------------
    # outcome feedback

    def record_failure(self, feature: str, now_ms: float) -> bool:
        """Record one failed application; returns True when the breaker
        opened (or re-opened) on this call."""
        st = self._state(feature)
        st.consecutive_failures += 1
        should_open = st.state is QuarantineState.HALF_OPEN or (
            st.state is QuarantineState.CLOSED
            and st.consecutive_failures >= self.threshold
        )
        if should_open:
            st.state = QuarantineState.OPEN
            st.opened_at_ms = now_ms
            self._opened.inc()
            return True
        return False

    def open(self, feature: str, now_ms: float) -> bool:
        """Force the breaker open, bypassing the failure threshold.

        Used by outer watchdogs that identify a misbehaving feature
        through evidence the per-application counter cannot see — e.g.
        the commit guard flagging a repeat offender whose commits keep
        regressing runtime KPIs despite applying cleanly. Returns True
        when the breaker newly opened (re-opening an OPEN breaker only
        restarts its probation window and is not counted again).
        """
        st = self._state(feature)
        already_open = st.state is QuarantineState.OPEN
        st.state = QuarantineState.OPEN
        st.opened_at_ms = now_ms
        if already_open:
            return False
        self._opened.inc()
        return True

    def record_success(self, feature: str) -> bool:
        """Record one successful application; returns True when the
        breaker closed from probation on this call."""
        st = self._state(feature)
        was_probation = st.state is QuarantineState.HALF_OPEN
        st.state = QuarantineState.CLOSED
        st.consecutive_failures = 0
        if was_probation:
            self._closed.inc()
            return True
        return False

    # ------------------------------------------------------------------
    # inspection

    def state(self, feature: str) -> QuarantineState:
        st = self._states.get(feature)
        return st.state if st is not None else QuarantineState.CLOSED

    def consecutive_failures(self, feature: str) -> int:
        st = self._states.get(feature)
        return st.consecutive_failures if st is not None else 0

    def quarantined_features(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name, st in self._states.items()
                if st.state is QuarantineState.OPEN
            )
        )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-feature state view for logs and the CLI."""
        return {
            name: {
                "state": st.state.value,
                "consecutive_failures": st.consecutive_failures,
                "opened_at_ms": st.opened_at_ms,
            }
            for name, st in sorted(self._states.items())
        }
