"""Retry policy for transient action failures.

Backoff happens in *simulated* time: a retried action advances the
database clock by the backoff delay (the system was waiting), but never
the work counters (no reconfiguration effort was spent waiting) — the
work-vs-elapsed contract of ``tuning/executors/base.py`` extended to
failure handling. See docs/robustness.md.

Backoff may carry **seeded jitter**: when a shared transient fault (a
storage hiccup, a lock convoy) hits many tenants of a fleet at once,
un-jittered exponential backoff makes every tenant retry at exactly the
same simulated instants — a retry stampede. Setting ``jitter`` spreads
each delay over ``[delay * (1 - jitter), delay]``, with the draw derived
deterministically from ``(seed, key, attempt)`` via
:func:`repro.util.rng.derive_rng` — same seed and key, same schedule, so
jittered experiments stay exactly reproducible while distinct keys
(tenants) desynchronise. ``jitter=0`` (the default) keeps the historic
closed-form delays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient action failures."""

    #: retries after the first failed attempt (0 disables retrying)
    max_retries: int = 3
    #: backoff before the first retry, in simulated ms
    base_backoff_ms: float = 50.0
    #: growth factor per further retry
    multiplier: float = 2.0
    #: cap on a single backoff delay, in simulated ms
    max_backoff_ms: float = 1_000.0
    #: fraction of each delay randomised away (0 = no jitter; 0.5 means
    #: a delay lands uniformly in [delay/2, delay])
    jitter: float = 0.0
    #: seed of the jitter stream (only read when ``jitter > 0``)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_ms < 0:
            raise ValueError("base_backoff_ms must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError("max_backoff_ms must be >= base_backoff_ms")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_ms(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based), capped.

        ``key`` salts the jitter stream — callers pass a stable identity
        (the fleet executors pass their tenant id) so concurrent
        retriers of one shared fault fan out instead of retrying in
        lockstep. With ``jitter == 0`` the key is ignored and the
        historic deterministic delay is returned unchanged.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(
            self.base_backoff_ms * self.multiplier**attempt,
            self.max_backoff_ms,
        )
        if self.jitter <= 0.0:
            return delay
        draw = derive_rng(
            self.seed, f"retry-jitter:{key}:{attempt}"
        ).random()
        return delay * (1.0 - self.jitter * draw)

    @property
    def total_backoff_ms(self) -> float:
        """Simulated ms a fully exhausted retry sequence waits.

        The un-keyed schedule (``key=""``); jitter only ever shortens
        delays, so this is also an upper bound for every keyed schedule.
        """
        return self.total_backoff_ms_for()

    def total_backoff_ms_for(self, key: str = "") -> float:
        """Total backoff of an exhausted retry sequence under ``key``."""
        return sum(self.backoff_ms(i, key) for i in range(self.max_retries))
