"""Retry policy for transient action failures.

Backoff happens in *simulated* time: a retried action advances the
database clock by the backoff delay (the system was waiting), but never
the work counters (no reconfiguration effort was spent waiting) — the
work-vs-elapsed contract of ``tuning/executors/base.py`` extended to
failure handling. See docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient action failures."""

    #: retries after the first failed attempt (0 disables retrying)
    max_retries: int = 3
    #: backoff before the first retry, in simulated ms
    base_backoff_ms: float = 50.0
    #: growth factor per further retry
    multiplier: float = 2.0
    #: cap on a single backoff delay, in simulated ms
    max_backoff_ms: float = 1_000.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_ms < 0:
            raise ValueError("base_backoff_ms must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError("max_backoff_ms must be >= base_backoff_ms")

    def backoff_ms(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(
            self.base_backoff_ms * self.multiplier**attempt,
            self.max_backoff_ms,
        )

    @property
    def total_backoff_ms(self) -> float:
        """Simulated ms a fully exhausted retry sequence waits."""
        return sum(self.backoff_ms(i) for i in range(self.max_retries))
