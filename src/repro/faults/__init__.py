"""Fault injection and recovery for the self-managing tuning loop.

The paper's framework assumes reconfiguration actions succeed; real
systems do not get that luxury. This package makes action failure a
first-class, *deterministic* part of the simulation:

- :class:`FaultInjector` / :class:`FaultConfig` — seeded per-action
  failure dice, transient vs. permanent fault classes, latency spikes
  on applications and what-if probes;
- :class:`RetryPolicy` — capped exponential backoff in simulated time
  for transient failures (used by the failure-aware executors in
  :mod:`repro.tuning.executors`);
- :class:`FeatureQuarantine` — the organizer's per-feature circuit
  breaker that quarantines a feature after repeated failed
  applications and re-admits it on probation.

See docs/robustness.md for the full fault model and recovery
invariants.
"""

from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.quarantine import Admission, FeatureQuarantine, QuarantineState
from repro.faults.recovery import RetryPolicy

__all__ = [
    "Admission",
    "FaultConfig",
    "FaultInjector",
    "FeatureQuarantine",
    "QuarantineState",
    "RetryPolicy",
]
