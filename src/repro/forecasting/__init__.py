"""The Workload Predictor component and its forecasting toolbox."""

from repro.forecasting.accuracy import BacktestResult, backtest, mae, rmse, smape
from repro.forecasting.analyzer import (
    SEASONAL_PEAK_SCENARIO,
    AnalyzerConfig,
    WorkloadAnalyzer,
)
from repro.forecasting.clustering import (
    TemplateCluster,
    cluster_templates,
    kmeans,
    merge_cluster_series,
)
from repro.forecasting.models import (
    AutoRegressive,
    Ensemble,
    ForecastModel,
    HistoricalMean,
    HoltLinear,
    LinearTrend,
    NaiveLastValue,
    SeasonalNaive,
    SimpleExponentialSmoothing,
)
from repro.forecasting.predictor import WorkloadPredictor
from repro.forecasting.representation import LogicalQuery, logical_workload
from repro.forecasting.scenarios import (
    EXPECTED_SCENARIO,
    WORST_CASE_SCENARIO,
    Forecast,
    WorkloadScenario,
    point_forecast,
    reduce_templates,
)

__all__ = [
    "AnalyzerConfig",
    "AutoRegressive",
    "BacktestResult",
    "EXPECTED_SCENARIO",
    "Ensemble",
    "Forecast",
    "ForecastModel",
    "HistoricalMean",
    "HoltLinear",
    "LinearTrend",
    "LogicalQuery",
    "NaiveLastValue",
    "SEASONAL_PEAK_SCENARIO",
    "SeasonalNaive",
    "SimpleExponentialSmoothing",
    "TemplateCluster",
    "WORST_CASE_SCENARIO",
    "WorkloadAnalyzer",
    "WorkloadPredictor",
    "WorkloadScenario",
    "backtest",
    "cluster_templates",
    "kmeans",
    "logical_workload",
    "mae",
    "merge_cluster_series",
    "point_forecast",
    "reduce_templates",
    "rmse",
    "smape",
]
