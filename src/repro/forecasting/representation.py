"""Step 1 of the prediction pipeline: plan cache → logical workload.

"Depending on how the query plan cache stores information about past
queries, these are transformed into an abstract logical representation of
query templates to remove unnecessary information" (Section II-C). The plan
cache already aggregates per template; this module extracts a clean,
self-contained view the rest of the predictor works on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.plan_cache import QueryPlanCache
from repro.workload.query import Query, QueryTemplate


@dataclass(frozen=True)
class LogicalQuery:
    """One query template with its aggregated execution history."""

    template: QueryTemplate
    sample_query: Query
    execution_count: int
    mean_ms: float

    @property
    def key(self) -> str:
        return self.template.key


def logical_workload(plan_cache: QueryPlanCache) -> dict[str, LogicalQuery]:
    """Extract the logical workload currently visible in the plan cache."""
    workload: dict[str, LogicalQuery] = {}
    for entry in plan_cache.entries():
        workload[entry.template.key] = LogicalQuery(
            template=entry.template,
            sample_query=entry.sample_query,
            execution_count=entry.execution_count,
            mean_ms=entry.mean_ms,
        )
    return workload
