"""The Workload Predictor component (Section II-C).

Wires the three pipeline steps together against a live database:

1. *logical representation* — the plan cache is snapshotted periodically;
   diffs of per-template execution counts become time-binned series
   (no per-query hooks, "no further overhead … during query execution");
2. *query clustering* — optional, delegated to the analyzer;
3. *workload analysis* — one forecast model per series, assembled into a
   multi-scenario :class:`~repro.forecasting.scenarios.Forecast`.
"""

from __future__ import annotations

import numpy as np

from repro.dbms.database import Database
from repro.errors import ForecastError
from repro.forecasting.analyzer import WorkloadAnalyzer
from repro.forecasting.representation import logical_workload
from repro.forecasting.scenarios import Forecast, WorkloadScenario
from repro.workload.query import Query, QueryTemplate


class WorkloadPredictor:
    """Builds workload history from plan-cache snapshots and forecasts it."""

    def __init__(
        self,
        database: Database,
        analyzer: WorkloadAnalyzer,
        bin_duration_ms: float = 60_000.0,
        max_history_bins: int = 512,
    ) -> None:
        if bin_duration_ms <= 0:
            raise ForecastError("bin_duration_ms must be positive")
        if max_history_bins < 2:
            raise ForecastError("max_history_bins must be at least 2")
        self._database = database
        self._analyzer = analyzer
        self._bin_duration_ms = float(bin_duration_ms)
        self._max_history_bins = max_history_bins
        self._history: dict[str, list[float]] = {}
        self._bin_count = 0
        self._last_counts: dict[str, int] = {}

    @property
    def bin_duration_ms(self) -> float:
        return self._bin_duration_ms

    @property
    def history_bins(self) -> int:
        return self._bin_count

    @property
    def analyzer(self) -> WorkloadAnalyzer:
        return self._analyzer

    # ------------------------------------------------------------------
    # history construction

    def observe(self) -> dict[str, float]:
        """Close one observation bin: diff the plan cache against the last
        snapshot and append per-template execution counts. Returns the bin."""
        snapshot = self._database.plan_cache.snapshot()
        bin_counts: dict[str, float] = {}
        for key, (count, _total_ms) in snapshot.items():
            previous = self._last_counts.get(key, 0)
            delta = max(0, count - previous)
            bin_counts[key] = float(delta)
            if key not in self._history:
                self._history[key] = [0.0] * self._bin_count
        self._last_counts = {
            key: count for key, (count, _ms) in snapshot.items()
        }
        for key, values in self._history.items():
            values.append(bin_counts.get(key, 0.0))
        self._bin_count += 1
        if self._bin_count > self._max_history_bins:
            overflow = self._bin_count - self._max_history_bins
            for values in self._history.values():
                del values[:overflow]
            self._bin_count = self._max_history_bins
        return bin_counts

    def series(self) -> dict[str, np.ndarray]:
        """Per-template execution counts per bin, aligned across templates."""
        return {
            key: np.array(values, dtype=float)
            for key, values in self._history.items()
        }

    def sample_queries(self) -> dict[str, Query]:
        return {
            key: logical.sample_query
            for key, logical in logical_workload(self._database.plan_cache).items()
        }

    def templates(self) -> dict[str, QueryTemplate]:
        return {
            key: logical.template
            for key, logical in logical_workload(self._database.plan_cache).items()
        }

    # ------------------------------------------------------------------
    # forecasting

    def has_enough_history(self, min_bins: int = 4) -> bool:
        return self._bin_count >= min_bins and bool(self._history)

    def forecast(self, horizon_bins: int) -> Forecast:
        """Forecast the next ``horizon_bins`` observation bins."""
        if not self.has_enough_history(min_bins=1):
            raise ForecastError("no observations yet; call observe() first")
        return self._analyzer.analyze(
            self.series(),
            self.sample_queries(),
            horizon_bins,
            self._bin_duration_ms,
            templates=self.templates(),
        )

    def recent_scenario(
        self, window_bins: int, horizon_bins: int, name: str = "recent"
    ) -> WorkloadScenario:
        """The recent workload extrapolated over a horizon — the organizer
        compares this against the forecast to detect significant change."""
        if self._bin_count == 0:
            raise ForecastError("no observations yet")
        window = min(window_bins, self._bin_count)
        frequencies = {
            key: float(np.mean(values[-window:])) * horizon_bins
            for key, values in self._history.items()
        }
        return WorkloadScenario(name, 1.0, frequencies)
