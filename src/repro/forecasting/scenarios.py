"""Forecast scenarios: expected, worst-case, and named alternatives.

Section II-C: "not only the expected workload should be incorporated but
also information about the distribution of potential future scenarios to
allow the computation of robust configurations." A :class:`Forecast` is a
small discrete distribution over :class:`WorkloadScenario` objects, each a
frequency vector per query template over the forecast horizon, plus one
representative concrete query per template for cost estimation.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ForecastError
from repro.workload.query import Query

EXPECTED_SCENARIO = "expected"
WORST_CASE_SCENARIO = "worst_case"


@dataclass(frozen=True)
class WorkloadScenario:
    """One possible future: expected executions per template over the horizon."""

    name: str
    probability: float
    #: template key → expected executions over the forecast horizon
    frequencies: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ForecastError(
                f"scenario {self.name!r}: probability {self.probability} "
                "outside [0, 1]"
            )
        for key, frequency in self.frequencies.items():
            if frequency < 0:
                raise ForecastError(
                    f"scenario {self.name!r}: negative frequency for {key!r}"
                )

    @property
    def total_executions(self) -> float:
        return float(sum(self.frequencies.values()))

    def frequency(self, template_key: str) -> float:
        return float(self.frequencies.get(template_key, 0.0))


@dataclass(frozen=True)
class Forecast:
    """A discrete distribution over workload scenarios for one horizon."""

    scenarios: tuple[WorkloadScenario, ...]
    horizon_bins: int
    bin_duration_ms: float
    #: template key → a concrete recent query usable for cost estimation
    sample_queries: Mapping[str, Query] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ForecastError("a forecast needs at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ForecastError(f"duplicate scenario names: {names}")
        total = sum(s.probability for s in self.scenarios)
        if abs(total - 1.0) > 1e-6:
            raise ForecastError(f"scenario probabilities sum to {total}, not 1")
        if EXPECTED_SCENARIO not in names:
            raise ForecastError("a forecast must contain an 'expected' scenario")

    @property
    def expected(self) -> WorkloadScenario:
        return self.scenario(EXPECTED_SCENARIO)

    def scenario(self, name: str) -> WorkloadScenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise ForecastError(f"no scenario named {name!r}")

    @property
    def scenario_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.scenarios)

    def template_keys(self) -> tuple[str, ...]:
        keys: set[str] = set()
        for s in self.scenarios:
            keys.update(s.frequencies)
        return tuple(sorted(keys))

    def mean_frequencies(self) -> dict[str, float]:
        """Probability-weighted frequencies across scenarios."""
        mean: dict[str, float] = {}
        for s in self.scenarios:
            for key, frequency in s.frequencies.items():
                mean[key] = mean.get(key, 0.0) + s.probability * frequency
        return mean


def reduce_templates(forecast: Forecast, max_templates: int) -> Forecast:
    """Shrink a forecast to its ``max_templates`` heaviest templates.

    Section III-A: "the estimation of workload costs for many combinations
    and large workloads can become expensive. Decreasing the workload size
    … can mitigate this problem in exchange for possibly less accuracy."
    Templates are ranked by probability-weighted frequency mass; the kept
    templates' frequencies are rescaled so each scenario's total execution
    mass is preserved (the reduced workload represents the full one). A
    scenario whose mass falls entirely on dropped templates keeps its
    total too: its executions are redistributed over the kept templates
    proportionally to their global mass (uniformly if that is zero), so
    no scenario silently becomes empty.
    """
    if max_templates < 1:
        raise ForecastError("max_templates must be at least 1")
    mass = forecast.mean_frequencies()
    keep = set(
        sorted(mass, key=lambda key: mass[key], reverse=True)[:max_templates]
    )
    if len(mass) <= max_templates:
        return forecast
    kept_mass_total = sum(mass[key] for key in keep)
    scenarios = []
    for scenario in forecast.scenarios:
        total = scenario.total_executions
        kept = {
            key: frequency
            for key, frequency in scenario.frequencies.items()
            if key in keep
        }
        kept_total = sum(kept.values())
        if kept_total > 0:
            scale = total / kept_total
            reduced = {key: frequency * scale for key, frequency in kept.items()}
        elif total > 0:
            # every frequency of this scenario fell on dropped templates;
            # spread its mass over the kept ones instead of losing it
            if kept_mass_total > 0:
                reduced = {
                    key: total * mass[key] / kept_mass_total for key in keep
                }
            else:
                reduced = {key: total / len(keep) for key in keep}
        else:
            reduced = {}
        scenarios.append(
            WorkloadScenario(
                scenario.name,
                scenario.probability,
                reduced,
            )
        )
    return Forecast(
        scenarios=tuple(scenarios),
        horizon_bins=forecast.horizon_bins,
        bin_duration_ms=forecast.bin_duration_ms,
        sample_queries={
            key: query
            for key, query in forecast.sample_queries.items()
            if key in keep
        },
    )


def point_forecast(
    frequencies: Mapping[str, float],
    sample_queries: Mapping[str, Query],
    horizon_bins: int = 1,
    bin_duration_ms: float = 60_000.0,
) -> Forecast:
    """A single-scenario forecast; handy for tests and direct tuner calls."""
    return Forecast(
        scenarios=(
            WorkloadScenario(EXPECTED_SCENARIO, 1.0, dict(frequencies)),
        ),
        horizon_bins=horizon_bins,
        bin_duration_ms=bin_duration_ms,
        sample_queries=dict(sample_queries),
    )
