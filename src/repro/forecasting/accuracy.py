"""Forecast error metrics and rolling-origin backtesting (experiment E5)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ForecastError
from repro.forecasting.models.base import ForecastModel


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    actual, predicted = _check(actual, predicted)
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    actual, predicted = _check(actual, predicted)
    return float(np.mean(np.abs(actual - predicted)))


def smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Symmetric MAPE in [0, 2]; safe when actual values hit zero."""
    actual, predicted = _check(actual, predicted)
    denominator = (np.abs(actual) + np.abs(predicted)) / 2.0
    ratio = np.divide(
        np.abs(actual - predicted),
        denominator,
        out=np.zeros_like(denominator),
        where=denominator > 0,
    )
    return float(np.mean(ratio))


def _check(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if actual.size != predicted.size:
        raise ForecastError(
            f"length mismatch: {actual.size} actual vs {predicted.size} predicted"
        )
    if actual.size == 0:
        raise ForecastError("cannot score empty forecasts")
    return actual, predicted


@dataclass(frozen=True)
class BacktestResult:
    """Accuracy of one model over a rolling-origin backtest."""

    model_name: str
    folds: int
    rmse: float
    mae: float
    smape: float


def backtest(
    model_factory: Callable[[], ForecastModel],
    series: np.ndarray,
    horizon: int,
    folds: int = 5,
    min_train: int = 8,
) -> BacktestResult:
    """Rolling-origin evaluation: fit on a growing prefix, score the next
    ``horizon`` values, advance the origin, repeat ``folds`` times."""
    series = np.asarray(series, dtype=float).ravel()
    needed = min_train + horizon + (folds - 1)
    if series.size < needed:
        raise ForecastError(
            f"series of length {series.size} too short for {folds} folds "
            f"(needs {needed})"
        )
    origins = np.linspace(
        min_train, series.size - horizon, folds
    ).astype(int)
    all_rmse, all_mae, all_smape = [], [], []
    name = model_factory().name
    for origin in origins:
        train = series[:origin]
        actual = series[origin : origin + horizon]
        predicted = model_factory().fit_predict(train, horizon)
        all_rmse.append(rmse(actual, predicted))
        all_mae.append(mae(actual, predicted))
        all_smape.append(smape(actual, predicted))
    return BacktestResult(
        model_name=name,
        folds=folds,
        rmse=float(np.mean(all_rmse)),
        mae=float(np.mean(all_mae)),
        smape=float(np.mean(all_smape)),
    )


def residual_std(
    model_factory: Callable[[], ForecastModel],
    series: np.ndarray,
    min_train: int = 8,
) -> float:
    """Standard deviation of one-step-ahead forecast errors.

    Used by the analyzer to widen the expected scenario into a worst-case
    scenario; larger model error ⇒ wider scenario spread.
    """
    series = np.asarray(series, dtype=float).ravel()
    if series.size <= min_train:
        return float(series.std()) if series.size > 1 else 0.0
    errors = []
    for origin in range(min_train, series.size):
        predicted = model_factory().fit_predict(series[:origin], 1)[0]
        errors.append(series[origin] - predicted)
    return float(np.std(errors))
