"""Query clustering (the optional step 2 of the prediction pipeline).

"Similar queries can be combined to reduce the number of queries that have
to be processed … and, in the end, reduce the time necessary for
predictions and tunings" (Section II-C). We cluster template feature
vectors with a seeded k-means (k-means++ initialisation, pure numpy) and
offer the series-level operation the predictor actually needs: merge the
per-template series of one cluster, forecast once, and redistribute the
prediction by each member's historical share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ForecastError
from repro.forecasting.features import feature_matrix
from repro.util.rng import derive_rng
from repro.workload.query import QueryTemplate


def kmeans(
    points: np.ndarray, k: int, seed: int = 0, max_iterations: int = 100
) -> np.ndarray:
    """Seeded k-means with k-means++ init; returns a label per point."""
    n = len(points)
    if k <= 0:
        raise ForecastError("k must be positive")
    if n == 0:
        return np.zeros(0, dtype=int)
    k = min(k, n)
    rng = derive_rng(seed, "kmeans")

    # k-means++ seeding
    centers = [points[int(rng.integers(n))]]
    while len(centers) < k:
        distances = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centers.append(points[int(rng.integers(n))])
            continue
        centers.append(points[int(rng.choice(n, p=distances / total))])
    center_matrix = np.array(centers)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        distances = np.linalg.norm(
            points[:, None, :] - center_matrix[None, :, :], axis=2
        )
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if len(members):
                center_matrix[j] = members.mean(axis=0)
    return labels


@dataclass(frozen=True)
class TemplateCluster:
    """A group of query templates treated as one forecasting unit."""

    cluster_id: int
    member_keys: tuple[str, ...]


def cluster_templates(
    templates: list[QueryTemplate], k: int, seed: int = 0
) -> list[TemplateCluster]:
    """Group templates into at most ``k`` shape-based clusters."""
    if not templates:
        return []
    matrix, _tables = feature_matrix(templates)
    # normalise features so no dimension dominates
    scale = matrix.std(axis=0)
    scale[scale == 0] = 1.0
    labels = kmeans(matrix / scale, k, seed=seed)
    clusters: dict[int, list[str]] = {}
    for template, label in zip(templates, labels):
        clusters.setdefault(int(label), []).append(template.key)
    return [
        TemplateCluster(cluster_id, tuple(sorted(members)))
        for cluster_id, members in sorted(clusters.items())
    ]


def merge_cluster_series(
    series: dict[str, np.ndarray], cluster: TemplateCluster
) -> tuple[np.ndarray, dict[str, float]]:
    """Sum member series; returns the merged series and each member's share
    of the total (used to redistribute the cluster-level forecast)."""
    members = [key for key in cluster.member_keys if key in series]
    if not members:
        raise ForecastError(f"cluster {cluster.cluster_id} has no known series")
    merged = np.sum([series[key] for key in members], axis=0)
    totals = {key: float(series[key].sum()) for key in members}
    grand_total = sum(totals.values())
    if grand_total <= 0:
        shares = {key: 1.0 / len(members) for key in members}
    else:
        shares = {key: totals[key] / grand_total for key in members}
    return merged, shares
