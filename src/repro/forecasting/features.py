"""Feature vectors for query templates, used by query clustering.

Templates are embedded into a small numeric space describing their shape:
predicate structure, aggregation, projection width, and which table they
touch. Similar shapes land close together, so clustering them (Section
II-C's optional step) merges queries the physical design treats alike.
"""

from __future__ import annotations

import numpy as np

from repro.workload.query import AGGREGATES, QueryTemplate

_RANGE_OPS = ("<", "<=", ">", ">=")


def template_features(
    template: QueryTemplate, table_order: dict[str, int]
) -> np.ndarray:
    """Embed one template; ``table_order`` maps table names to feature slots."""
    n_tables = max(len(table_order), 1)
    table_onehot = np.zeros(n_tables)
    slot = table_order.get(template.table)
    if slot is not None:
        table_onehot[slot] = 1.0

    n_eq = sum(1 for _c, op in template.predicate_signature if op == "=")
    n_range = sum(1 for _c, op in template.predicate_signature if op in _RANGE_OPS)
    n_other = len(template.predicate_signature) - n_eq - n_range

    agg_onehot = np.zeros(len(AGGREGATES) + 1)
    if template.aggregate is None:
        agg_onehot[-1] = 1.0
    else:
        agg_onehot[AGGREGATES.index(template.aggregate)] = 1.0

    projection_width = (
        -1.0 if template.projection is None else float(len(template.projection))
    )
    shape = np.array(
        [float(n_eq), float(n_range), float(n_other), projection_width]
    )
    return np.concatenate([table_onehot, shape, agg_onehot])


def feature_matrix(
    templates: list[QueryTemplate],
) -> tuple[np.ndarray, dict[str, int]]:
    """Stack features for all templates; returns the matrix and table slots."""
    tables = sorted({t.table for t in templates})
    table_order = {name: i for i, name in enumerate(tables)}
    if not templates:
        return np.zeros((0, 0)), table_order
    rows = [template_features(t, table_order) for t in templates]
    return np.vstack(rows), table_order
