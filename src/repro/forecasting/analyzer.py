"""Step 3 of the prediction pipeline: series → forecast scenarios.

The workload analyzer fits one forecast model per query template (or per
cluster of templates) and assembles a :class:`~repro.forecasting.scenarios.
Forecast`: the *expected* scenario is the point forecast aggregated over
the horizon; the *worst-case* scenario widens every template's frequency by
a multiple of its estimated forecast error; an optional *seasonal-peak*
scenario replays each template's maximum rate of the last season.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ForecastError
from repro.forecasting.accuracy import residual_std
from repro.forecasting.clustering import cluster_templates, merge_cluster_series
from repro.forecasting.models.base import ForecastModel
from repro.forecasting.models.ensemble import ModelFactory
from repro.forecasting.scenarios import (
    EXPECTED_SCENARIO,
    WORST_CASE_SCENARIO,
    Forecast,
    WorkloadScenario,
)
from repro.workload.query import Query, QueryTemplate

SEASONAL_PEAK_SCENARIO = "seasonal_peak"


@dataclass(frozen=True)
class AnalyzerConfig:
    """Tuning parameters of the workload analyzer."""

    #: z-score by which the worst case exceeds the expectation
    worst_case_z: float = 1.645
    #: probability mass of the expected scenario (rest is spread over others)
    expected_probability: float = 0.7
    #: how forecast error is estimated: "diff" (std of first differences,
    #: cheap) or "backtest" (one-step-ahead errors, accurate but slow)
    error_estimate: str = "diff"
    #: add a seasonal-peak scenario replaying last season's maxima
    include_peak_scenario: bool = False
    #: season length in bins (required for the peak scenario)
    period_bins: int | None = None
    #: cluster templates before forecasting when there are more than this
    cluster_above: int | None = None
    max_clusters: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.error_estimate not in ("diff", "backtest"):
            raise ForecastError(
                f"unknown error_estimate {self.error_estimate!r}"
            )
        if not 0.0 < self.expected_probability <= 1.0:
            raise ForecastError("expected_probability must be in (0, 1]")
        if self.include_peak_scenario and not self.period_bins:
            raise ForecastError("peak scenario requires period_bins")


class WorkloadAnalyzer:
    """Turns per-template series into a multi-scenario forecast."""

    def __init__(
        self,
        model_factory: ModelFactory,
        config: AnalyzerConfig | None = None,
    ) -> None:
        self._model_factory = model_factory
        self._config = config or AnalyzerConfig()

    @property
    def config(self) -> AnalyzerConfig:
        return self._config

    def _error_std(self, series: np.ndarray) -> float:
        if self._config.error_estimate == "backtest":
            return residual_std(self._model_factory, series)
        if series.size < 2:
            return 0.0
        return float(np.std(np.diff(series)))

    def _forecast_one(
        self, series: np.ndarray, horizon: int
    ) -> tuple[float, float]:
        """(expected executions over horizon, error std over horizon)."""
        model: ForecastModel = self._model_factory()
        prediction = model.fit_predict(series, horizon)
        expected = float(prediction.sum())
        sigma = self._error_std(series) * float(np.sqrt(horizon))
        return expected, sigma

    def _maybe_clustered_series(
        self,
        series: dict[str, np.ndarray],
        templates: dict[str, QueryTemplate],
    ) -> list[tuple[np.ndarray, dict[str, float]]]:
        """Series units to forecast: either one per template or one per
        cluster with redistribution shares."""
        config = self._config
        if (
            config.cluster_above is not None
            and len(series) > config.cluster_above
            and templates
        ):
            ordered = [templates[key] for key in sorted(series) if key in templates]
            clusters = cluster_templates(
                ordered, config.max_clusters, seed=config.seed
            )
            return [merge_cluster_series(series, c) for c in clusters]
        return [(values, {key: 1.0}) for key, values in series.items()]

    def analyze(
        self,
        series: dict[str, np.ndarray],
        sample_queries: dict[str, Query],
        horizon_bins: int,
        bin_duration_ms: float,
        templates: dict[str, QueryTemplate] | None = None,
    ) -> Forecast:
        """Build the forecast for the next ``horizon_bins`` bins."""
        if not series:
            raise ForecastError("no workload history to analyze")
        if horizon_bins <= 0:
            raise ForecastError("horizon_bins must be positive")
        config = self._config

        expected: dict[str, float] = {}
        worst: dict[str, float] = {}
        peak: dict[str, float] = {}
        units = self._maybe_clustered_series(series, templates or {})
        for unit_series, shares in units:
            unit_expected, unit_sigma = self._forecast_one(
                unit_series, horizon_bins
            )
            unit_worst = unit_expected + config.worst_case_z * unit_sigma
            if config.include_peak_scenario:
                period = min(config.period_bins, unit_series.size)
                unit_peak = float(unit_series[-period:].max()) * horizon_bins
                unit_peak = max(unit_peak, unit_expected)
            else:
                unit_peak = 0.0
            for key, share in shares.items():
                expected[key] = share * unit_expected
                worst[key] = share * unit_worst
                if config.include_peak_scenario:
                    peak[key] = share * unit_peak

        scenarios = [
            WorkloadScenario(
                EXPECTED_SCENARIO, config.expected_probability, expected
            )
        ]
        rest = 1.0 - config.expected_probability
        if config.include_peak_scenario:
            scenarios.append(
                WorkloadScenario(WORST_CASE_SCENARIO, rest * 2 / 3, worst)
            )
            scenarios.append(
                WorkloadScenario(SEASONAL_PEAK_SCENARIO, rest / 3, peak)
            )
        elif rest > 0:
            scenarios.append(WorkloadScenario(WORST_CASE_SCENARIO, rest, worst))

        return Forecast(
            scenarios=tuple(scenarios),
            horizon_bins=horizon_bins,
            bin_duration_ms=bin_duration_ms,
            sample_queries={
                key: query
                for key, query in sample_queries.items()
                if key in series
            },
        )
