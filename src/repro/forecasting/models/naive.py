"""Naive forecasters: last value and historical mean.

These are the "latest scenarios" baselines of Section II-C and the floor
every other model is benchmarked against in experiment E5.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.models.base import ForecastModel


class NaiveLastValue(ForecastModel):
    """Predicts the last observed value forever."""

    name = "naive-last"

    def _fit(self, series: np.ndarray) -> None:
        self._last = float(series[-1])

    def _predict(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._last)


class HistoricalMean(ForecastModel):
    """Predicts the mean of a trailing window."""

    name = "historical-mean"

    def __init__(self, window: int | None = None) -> None:
        super().__init__()
        if window is not None and window <= 0:
            raise ValueError("window must be positive")
        self._window = window

    def _fit(self, series: np.ndarray) -> None:
        if self._window is not None:
            series = series[-self._window:]
        self._mean = float(series.mean())

    def _predict(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._mean)
