"""Seasonal-naive forecasting: repeat the last full season."""

from __future__ import annotations

import numpy as np

from repro.forecasting.models.base import ForecastModel


class SeasonalNaive(ForecastModel):
    """Predicts ``series[t - period]``; the right model for workloads whose
    dominant structure is a daily/weekly cycle ("seasonal time intervals",
    Section II-C). Falls back to last-value when history is shorter than
    one period."""

    name = "seasonal-naive"

    def __init__(self, period: int) -> None:
        super().__init__()
        if period <= 0:
            raise ValueError("period must be positive")
        self._period = period

    @property
    def period(self) -> int:
        return self._period

    def _fit(self, series: np.ndarray) -> None:
        if series.size >= self._period:
            self._season = series[-self._period:].copy()
        else:
            self._season = np.full(self._period, float(series[-1]))

    def _predict(self, horizon: int) -> np.ndarray:
        reps = int(np.ceil(horizon / self._period))
        return np.tile(self._season, reps)[:horizon]
