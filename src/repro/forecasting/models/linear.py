"""Linear-trend forecasting via least squares.

The "simple linear regressions" option of Section II-C: fit
``y = a + b*t`` on a trailing window and extrapolate.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.models.base import ForecastModel


class LinearTrend(ForecastModel):
    """Ordinary least squares on time; extrapolates the fitted line."""

    name = "linear-trend"

    def __init__(self, window: int | None = None) -> None:
        super().__init__()
        if window is not None and window < 2:
            raise ValueError("window must be at least 2")
        self._window = window

    def _fit(self, series: np.ndarray) -> None:
        if self._window is not None:
            series = series[-self._window:]
        n = series.size
        if n == 1:
            self._intercept = float(series[0])
            self._slope = 0.0
            self._origin = 1
            return
        t = np.arange(n, dtype=float)
        design = np.column_stack([np.ones(n), t])
        coeffs, *_ = np.linalg.lstsq(design, series, rcond=None)
        self._intercept = float(coeffs[0])
        self._slope = float(coeffs[1])
        self._origin = n

    def _predict(self, horizon: int) -> np.ndarray:
        t = np.arange(self._origin, self._origin + horizon, dtype=float)
        return self._intercept + self._slope * t
