"""Autoregressive forecasting: AR(p) fitted with least squares.

This is the "time series analysis (cf. ARIMA)" option of Section II-C,
implemented without external statistics packages: an AR(p) model with an
intercept, fitted on the lag matrix by ``numpy.linalg.lstsq`` and applied
recursively for multi-step prediction. Differencing (the "I" of ARIMA) is
available via ``difference=1`` for trending series.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.models.base import ForecastModel


class AutoRegressive(ForecastModel):
    """AR(p) with intercept; optional first-order differencing."""

    name = "ar"

    def __init__(self, order: int = 4, difference: int = 0) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("order must be at least 1")
        if difference not in (0, 1):
            raise ValueError("only difference 0 or 1 is supported")
        self._order = order
        self._difference = difference

    def _fit(self, series: np.ndarray) -> None:
        self._last_level = float(series[-1])
        working = np.diff(series) if self._difference else series
        p = self._order
        if working.size <= p + 1:
            # Not enough data for the lag matrix: degrade to a mean model.
            self._coeffs = None
            self._mean = float(working.mean()) if working.size else 0.0
            self._history = working.copy()
            return
        rows = working.size - p
        lags = np.column_stack(
            [working[p - k - 1 : p - k - 1 + rows] for k in range(p)]
        )
        design = np.column_stack([np.ones(rows), lags])
        target = working[p:]
        coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
        self._coeffs = coeffs
        self._history = working[-p:].copy()

    def _predict(self, horizon: int) -> np.ndarray:
        if self._coeffs is None:
            steps = np.full(horizon, self._mean)
        else:
            history = list(self._history)
            steps = np.empty(horizon)
            for i in range(horizon):
                lags = history[::-1][: self._order]
                value = float(self._coeffs[0])
                for k, lag in enumerate(lags):
                    value += float(self._coeffs[k + 1]) * lag
                steps[i] = value
                history.append(value)
                history = history[-self._order :]
        if self._difference:
            return self._last_level + np.cumsum(steps)
        return steps
