"""Forecast models for workload time series."""

from repro.forecasting.models.autoregressive import AutoRegressive
from repro.forecasting.models.base import ForecastModel
from repro.forecasting.models.ensemble import Ensemble, ModelFactory
from repro.forecasting.models.linear import LinearTrend
from repro.forecasting.models.naive import HistoricalMean, NaiveLastValue
from repro.forecasting.models.seasonal import SeasonalNaive
from repro.forecasting.models.smoothing import HoltLinear, SimpleExponentialSmoothing

__all__ = [
    "AutoRegressive",
    "Ensemble",
    "ForecastModel",
    "HistoricalMean",
    "HoltLinear",
    "LinearTrend",
    "ModelFactory",
    "NaiveLastValue",
    "SeasonalNaive",
    "SimpleExponentialSmoothing",
]
