"""Ensemble forecasting: combine member models, optionally weighted by
their holdout accuracy on the series being forecast."""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.forecasting.models.base import ForecastModel

#: Factory producing a fresh, unfitted model (models are stateful).
ModelFactory = Callable[[], ForecastModel]


class Ensemble(ForecastModel):
    """Weighted average of member model predictions.

    With ``holdout > 0`` each member is scored on the last ``holdout``
    observations (fit on the prefix, predict the holdout) and weighted by
    inverse RMSE, so the ensemble adapts to whichever structure the series
    actually has — the paper's motivation for running "multiple workload
    analyzer instances" side by side.
    """

    name = "ensemble"

    def __init__(
        self, factories: Sequence[ModelFactory], holdout: int = 0
    ) -> None:
        super().__init__()
        if not factories:
            raise ValueError("ensemble needs at least one member factory")
        if holdout < 0:
            raise ValueError("holdout must be non-negative")
        self._factories = list(factories)
        self._holdout = holdout

    def _member_weights(self, series: np.ndarray) -> np.ndarray:
        k = len(self._factories)
        if self._holdout == 0 or series.size <= self._holdout + 1:
            return np.full(k, 1.0 / k)
        train = series[: -self._holdout]
        actual = series[-self._holdout :]
        errors = np.empty(k)
        for i, factory in enumerate(self._factories):
            try:
                predicted = factory().fit_predict(train, self._holdout)
                errors[i] = float(np.sqrt(np.mean((predicted - actual) ** 2)))
            except Exception:
                errors[i] = np.inf
        weights = 1.0 / (errors + 1e-9)
        if not np.isfinite(weights).any():
            return np.full(k, 1.0 / k)
        weights[~np.isfinite(weights)] = 0.0
        return weights / weights.sum()

    def _fit(self, series: np.ndarray) -> None:
        self._weights = self._member_weights(series)
        self._members = []
        for factory in self._factories:
            model = factory()
            model.fit(series)
            self._members.append(model)

    def _predict(self, horizon: int) -> np.ndarray:
        combined = np.zeros(horizon)
        for weight, member in zip(self._weights, self._members):
            if weight > 0:
                combined += weight * member.predict(horizon)
        return combined

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()
