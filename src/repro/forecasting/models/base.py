"""Forecast model interface.

A forecast model fits a single numeric series (executions of one query
template per time bin) and predicts the next ``horizon`` bins. The analyzer
(Section II-C) can host "multiple workload analyzer instances that each
employ different methods" — anything implementing this interface plugs in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ForecastError


class ForecastModel(ABC):
    """Fits one series, predicts its continuation."""

    #: short identifier used in reports and ensemble weighting
    name: str = "model"

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def _fit(self, series: np.ndarray) -> None:
        """Model-specific fitting; ``series`` is 1-D, non-empty, float."""

    @abstractmethod
    def _predict(self, horizon: int) -> np.ndarray:
        """Model-specific prediction of the next ``horizon`` values."""

    def fit(self, series: np.ndarray) -> "ForecastModel":
        series = np.asarray(series, dtype=float).ravel()
        if series.size == 0:
            raise ForecastError(f"{self.name}: cannot fit an empty series")
        self._fit(series)
        self._fitted = True
        return self

    def predict(self, horizon: int) -> np.ndarray:
        if not self._fitted:
            raise ForecastError(f"{self.name}: predict() before fit()")
        if horizon <= 0:
            raise ForecastError(f"{self.name}: horizon must be positive")
        prediction = np.asarray(self._predict(horizon), dtype=float)
        # Negative execution counts are meaningless.
        return np.clip(prediction, 0.0, None)

    def fit_predict(self, series: np.ndarray, horizon: int) -> np.ndarray:
        return self.fit(series).predict(horizon)
