"""Exponential smoothing forecasters (simple and Holt's linear)."""

from __future__ import annotations

import numpy as np

from repro.forecasting.models.base import ForecastModel


class SimpleExponentialSmoothing(ForecastModel):
    """Level-only smoothing: robust to noise, blind to trend and season."""

    name = "ses"

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha

    def _fit(self, series: np.ndarray) -> None:
        level = float(series[0])
        for value in series[1:]:
            level = self._alpha * float(value) + (1.0 - self._alpha) * level
        self._level = level

    def _predict(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._level)


class HoltLinear(ForecastModel):
    """Holt's linear method: smoothed level plus smoothed trend."""

    name = "holt"

    def __init__(self, alpha: float = 0.3, beta: float = 0.1) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        self._alpha = alpha
        self._beta = beta

    def _fit(self, series: np.ndarray) -> None:
        level = float(series[0])
        trend = float(series[1] - series[0]) if series.size > 1 else 0.0
        for value in series[1:]:
            previous_level = level
            level = self._alpha * float(value) + (1.0 - self._alpha) * (
                level + trend
            )
            trend = self._beta * (level - previous_level) + (1.0 - self._beta) * trend
        self._level = level
        self._trend = trend

    def _predict(self, horizon: int) -> np.ndarray:
        steps = np.arange(1, horizon + 1, dtype=float)
        return self._level + self._trend * steps
