"""Component registry: named, exchangeable framework components.

The framework's central promise is that components "can be exchanged
effortlessly" (Section II-A). The registry makes that concrete: selectors,
forecast models, feature tuners, and triggers are registered under string
names, so experiments can swap implementations by configuration instead of
code changes — and user-defined components plug in the same way.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ReproError


class ComponentRegistry:
    """kind → name → factory registry."""

    def __init__(self) -> None:
        self._factories: dict[str, dict[str, Callable[..., object]]] = {}

    def register(
        self, kind: str, name: str, factory: Callable[..., object]
    ) -> None:
        bucket = self._factories.setdefault(kind, {})
        if name in bucket:
            raise ReproError(f"{kind} component {name!r} already registered")
        bucket[name] = factory

    def create(self, kind: str, name: str, **kwargs: object) -> object:
        try:
            factory = self._factories[kind][name]
        except KeyError:
            raise ReproError(
                f"unknown {kind} component {name!r}; "
                f"known: {sorted(self._factories.get(kind, {}))}"
            ) from None
        return factory(**kwargs)

    def names(self, kind: str) -> tuple[str, ...]:
        return tuple(sorted(self._factories.get(kind, {})))

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted(self._factories))


def default_registry() -> ComponentRegistry:
    """A registry pre-populated with every built-in component."""
    # imports are local so this module stays import-cycle free
    from repro.forecasting.models import (
        AutoRegressive,
        HistoricalMean,
        HoltLinear,
        LinearTrend,
        NaiveLastValue,
        SeasonalNaive,
        SimpleExponentialSmoothing,
    )
    from repro.tuning.features import (
        BufferPoolFeature,
        CompressionFeature,
        DataPlacementFeature,
        IndexSelectionFeature,
        SortOrderFeature,
    )
    from repro.tuning.selectors import (
        GeneticSelector,
        GreedySelector,
        OptimalSelector,
        RobustSelector,
    )

    registry = ComponentRegistry()

    registry.register("selector", "greedy", GreedySelector)
    registry.register("selector", "optimal", OptimalSelector)
    registry.register("selector", "genetic", GeneticSelector)
    registry.register(
        "selector",
        "robust",
        lambda base=None, **kw: RobustSelector(base or GreedySelector(), **kw),
    )

    registry.register("forecast_model", "naive-last", NaiveLastValue)
    registry.register("forecast_model", "historical-mean", HistoricalMean)
    registry.register(
        "forecast_model", "seasonal-naive", lambda period=24: SeasonalNaive(period)
    )
    registry.register("forecast_model", "linear-trend", LinearTrend)
    registry.register("forecast_model", "ses", SimpleExponentialSmoothing)
    registry.register("forecast_model", "holt", HoltLinear)
    registry.register("forecast_model", "ar", AutoRegressive)

    registry.register("feature", "index_selection", IndexSelectionFeature)
    registry.register("feature", "compression", CompressionFeature)
    registry.register("feature", "data_placement", DataPlacementFeature)
    registry.register("feature", "buffer_pool", BufferPoolFeature)
    registry.register("feature", "sort_order", SortOrderFeature)

    return registry
