"""Tuning triggers: when should the organizer start a tuning run?

"The organizer … identifies convenient points in time for tuning by
constantly monitoring runtime KPIs and taking workload forecasts into
account. The organizer also decides whether changes observed in workload
forecasts are significant enough to justify possibly expensive tunings.
This decision relies … on the difference of the current workload cost and
the estimated workload cost for the forecasted workload given the current
configuration" (Section II-E).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.configuration.constraints import ConstraintSet
from repro.cost.what_if import WhatIfOptimizer
from repro.forecasting.predictor import WorkloadPredictor
from repro.kpi.monitor import RuntimeKPIMonitor


@dataclass
class TriggerContext:
    """Everything a trigger may consult."""

    predictor: WorkloadPredictor
    monitor: RuntimeKPIMonitor
    optimizer: WhatIfOptimizer
    constraints: ConstraintSet
    now_ms: float
    horizon_bins: int
    last_tuning_ms: float | None = None


@dataclass(frozen=True)
class TriggerDecision:
    """Whether to tune, and why."""

    should_tune: bool
    trigger: str
    reason: str
    details: dict[str, float] = field(default_factory=dict)


#: trigger name of guard-initiated escalation passes. Not a
#: :class:`TuningTrigger` — the commit guard escalates out of band from
#: its per-tick hook (see repro.guard) instead of waiting for the
#: organizer's trigger evaluation, which is the point: the live workload
#: left the forecast envelope *now*.
FORECAST_MISS_TRIGGER = "forecast_miss"


class TuningTrigger(ABC):
    """One policy that can demand a tuning run."""

    name: str = "trigger"

    @abstractmethod
    def evaluate(self, context: TriggerContext) -> TriggerDecision:
        """Decide based on the current context."""

    def _no(self, reason: str, **details: float) -> TriggerDecision:
        return TriggerDecision(False, self.name, reason, details)

    def _yes(self, reason: str, **details: float) -> TriggerDecision:
        return TriggerDecision(True, self.name, reason, details)


class ForecastDriftTrigger(TuningTrigger):
    """Fires when the forecasted workload would cost significantly more (or
    less) than the recent workload under the current configuration."""

    name = "forecast_drift"

    def __init__(
        self,
        relative_threshold: float = 0.15,
        recent_window_bins: int = 4,
        min_history_bins: int = 4,
    ) -> None:
        if relative_threshold <= 0:
            raise ValueError("relative_threshold must be positive")
        self._threshold = relative_threshold
        self._window = recent_window_bins
        self._min_history = min_history_bins

    def evaluate(self, context: TriggerContext) -> TriggerDecision:
        predictor = context.predictor
        if not predictor.has_enough_history(self._min_history):
            return self._no("insufficient workload history")
        forecast = predictor.forecast(context.horizon_bins)
        sample_queries = dict(forecast.sample_queries)
        forecast_cost = context.optimizer.scenario_cost_ms(
            forecast.expected, sample_queries
        )
        recent = predictor.recent_scenario(self._window, context.horizon_bins)
        recent_cost = context.optimizer.scenario_cost_ms(
            recent, sample_queries
        )
        if recent_cost <= 0:
            return self._no("no recent workload cost to compare")
        drift = abs(forecast_cost - recent_cost) / recent_cost
        if drift >= self._threshold:
            return self._yes(
                f"forecast cost deviates {drift:.1%} from recent workload",
                drift=drift,
                forecast_cost_ms=forecast_cost,
                recent_cost_ms=recent_cost,
            )
        return self._no(
            f"forecast within {self._threshold:.0%} of recent workload",
            drift=drift,
        )


class SlaViolationTrigger(TuningTrigger):
    """Fires when any SLA of the constraint set is persistently violated."""

    name = "sla_violation"

    def evaluate(self, context: TriggerContext) -> TriggerDecision:
        slas = context.constraints.slas
        if not slas:
            return self._no("no SLAs configured")
        context.monitor.update_sla_streaks(slas)
        breached = context.monitor.breached_slas(slas)
        if breached:
            worst = breached[0]
            return self._yes(
                f"SLA on {worst.metric} breached "
                f"(> {worst.threshold} for {worst.patience} samples)",
                threshold=worst.threshold,
            )
        return self._no("all SLAs satisfied")


class PeriodicTrigger(TuningTrigger):
    """Fires on a fixed simulated-time cadence (maintenance-window style)."""

    name = "periodic"

    def __init__(self, every_ms: float) -> None:
        if every_ms <= 0:
            raise ValueError("every_ms must be positive")
        self._every_ms = every_ms

    def evaluate(self, context: TriggerContext) -> TriggerDecision:
        last = context.last_tuning_ms
        if last is None:
            return self._yes("no tuning has run yet")
        elapsed = context.now_ms - last
        if elapsed >= self._every_ms:
            return self._yes(
                f"{elapsed:.0f} ms since last tuning", elapsed_ms=elapsed
            )
        return self._no("within the periodic interval", elapsed_ms=elapsed)


class NeverTrigger(TuningTrigger):
    """Disables autonomous tuning (manual mode)."""

    name = "never"

    def evaluate(self, context: TriggerContext) -> TriggerDecision:
        del context
        return self._no("autonomous tuning disabled")
