"""The Organizer (Section II-E).

Orchestrates the self-management loop: evaluates triggers against KPIs and
forecasts, gates expensive tunings to idle windows, decides the tuning
order for multiple features (Section III, cached and refreshed
periodically), optionally restricts tuning to the features with the best
impact per cost, runs the recursive tuning, and stores the resulting
configuration instance with its predicted and measured benefit — closing
the feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.configuration.config import ConfigurationInstance
from repro.configuration.constraints import ConstraintSet
from repro.configuration.delta import ConfigurationDelta
from repro.configuration.store import (
    ConfigurationInstanceStorage,
    ConfigurationRecord,
)
from repro.cost.what_if import WhatIfOptimizer
from repro.core.events import EventKind, EventLog
from repro.core.triggers import (
    FORECAST_MISS_TRIGGER,
    ForecastDriftTrigger,
    SlaViolationTrigger,
    TriggerContext,
    TriggerDecision,
    TuningTrigger,
)
from repro.dbms.database import Database
from repro.errors import TuningAbortedError
from repro.faults.quarantine import Admission, FeatureQuarantine
from repro.forecasting.predictor import WorkloadPredictor
from repro.guard.forecast_miss import ForecastMissVerdict
from repro.guard.guard import CommitGuard, GuardConfig
from repro.guard.ledger import ProbationCommit
from repro.guard.regression import RegressionVerdict
from repro.kpi.metrics import (
    WHATIF_CACHE_EVICTIONS,
    WHATIF_CACHE_HITS,
    WHATIF_CACHE_MISSES,
)
from repro.kpi.monitor import RuntimeKPIMonitor
from repro.ordering.heuristics import top_features_by_impact_per_cost
from repro.ordering.lp import LPOrderOptimizer
from repro.ordering.recursive import (
    RecursiveTuningPlanner,
    RecursiveTuningReport,
)
from repro.policy.engine import (
    POLICY_TRIGGER,
    ObjectiveViolationTrigger,
    PolicyEngine,
    PolicyPlanReport,
)
from repro.telemetry import Telemetry
from repro.tuning.executors.base import ApplicationReport, TuningExecutor
from repro.tuning.executors.sequential import SequentialExecutor
from repro.tuning.tuner import Tuner

if TYPE_CHECKING:
    from repro.configuration.actions import Action
    from repro.forecasting.scenarios import Forecast

#: Fleet-arbiter admission hook: called with the firing trigger decision
#: before a pass runs; returns ``(admitted, reason)``. A denial logs a
#: structured SKIP event and defers the pass (see repro.fleet.arbiter).
AdmissionHook = Callable[["Organizer", TriggerDecision], "tuple[bool, str]"]

#: Called with every committed pass report — the fleet arbiter harvests
#: tuning priors from it; escalation passes flow through it too.
CommitListener = Callable[["Organizer", "OrganizerRunReport"], None]

#: Trigger name recorded for passes replayed from a fleet tuning prior.
FLEET_REPLAY_TRIGGER = "fleet_replay"


@dataclass(frozen=True)
class OrganizerConfig:
    """Policy parameters of the organizer."""

    #: forecast horizon, in observation bins
    horizon_bins: int = 6
    #: bins of history required before any tuning
    min_history_bins: int = 4
    #: re-measure dependencies and re-solve the ordering LP every N runs
    order_refresh_every: int = 5
    #: simulated ms that must pass between autonomous tuning runs
    cooldown_ms: float = 0.0
    #: defer non-urgent tunings until a low-utilization window
    require_idle: bool = False
    idle_utilization_threshold: float = 0.5
    #: skip applying a pass whose predicted benefit is below this
    min_predicted_benefit_ms: float = 0.0
    #: when set, tune only the features whose single-tuning one-time costs
    #: fit this budget, ranked by impact per cost (Section III-A)
    tuning_time_budget_ms: float | None = None
    #: quarantine a feature after this many consecutive failed applications
    quarantine_after: int = 3
    #: simulated ms a quarantined feature waits before a probation attempt
    quarantine_probation_ms: float = 30 * 60_000.0
    #: guarded-commit protocol: probation windows, regression watchdog,
    #: and forecast-miss escalation (see repro.guard, docs/robustness.md)
    guard: GuardConfig = field(default_factory=GuardConfig)


@dataclass
class OrganizerRunReport:
    """What one organizer-initiated tuning pass did."""

    decision: TriggerDecision
    order: tuple[str, ...]
    tuning: RecursiveTuningReport
    record_id: int | None = None
    tuned_features: tuple[str, ...] = ()
    skipped_features: tuple[str, ...] = field(default_factory=tuple)
    #: features excluded from this pass by the quarantine breaker
    quarantined_features: tuple[str, ...] = field(default_factory=tuple)
    #: the plan-propose/plan-evaluate record of a policy pass (None for
    #: trigger-reactive passes)
    plan: PolicyPlanReport | None = None


class Organizer:
    """Orchestrates triggers, ordering, recursive tuning, and feedback."""

    def __init__(
        self,
        db: Database,
        predictor: WorkloadPredictor,
        tuners: list[Tuner],
        constraints: ConstraintSet | None = None,
        monitor: RuntimeKPIMonitor | None = None,
        store: ConfigurationInstanceStorage | None = None,
        events: EventLog | None = None,
        triggers: list[TuningTrigger] | None = None,
        config: OrganizerConfig | None = None,
        optimizer: WhatIfOptimizer | None = None,
        executor: TuningExecutor | None = None,
        telemetry: Telemetry | None = None,
        policy: PolicyEngine | None = None,
    ) -> None:
        self._db = db
        self._predictor = predictor
        self._tuners = tuners
        self._constraints = constraints or ConstraintSet()
        # one telemetry spine for the pass/feature/phase span tree and the
        # registry interval reads below; the driver passes its shared one
        self._telemetry = (
            telemetry if telemetry is not None else Telemetry.disabled(db.clock)
        )
        self._tracer = self._telemetry.tracer
        self._monitor = monitor if monitor is not None else RuntimeKPIMonitor(db)
        # explicit None checks: EventLog and the instance storage define
        # __len__, so freshly created (empty) ones are falsy
        self._store = store if store is not None else ConfigurationInstanceStorage()
        self._events = events if events is not None else EventLog()
        self._triggers = triggers or [
            SlaViolationTrigger(),
            ForecastDriftTrigger(),
        ]
        self._config = config or OrganizerConfig()
        self._optimizer = optimizer or WhatIfOptimizer(db)
        # surface the shared optimizer's cache counters both through the
        # monitor (interval KPIs) and through the telemetry registry (for
        # the per-pass interval reads in run_tuning); both binds are
        # no-ops when the driver already wired one shared registry
        self._optimizer.bind_registry(self._monitor.registry, replace=True)
        self._optimizer.bind_registry(self._telemetry.registry, replace=True)
        self._executor = executor
        # per-feature circuit breaker: graceful degradation when a
        # feature's applications keep failing (see repro.faults)
        self._quarantine = FeatureQuarantine(
            threshold=self._config.quarantine_after,
            probation_ms=self._config.quarantine_probation_ms,
            registry=self._telemetry.registry,
        )
        self._planner = RecursiveTuningPlanner(
            db,
            tuners,
            self._constraints,
            order_optimizer=LPOrderOptimizer(),
            optimizer=self._optimizer,
            telemetry=self._telemetry,
        )
        # the commit guard: probation ledger, regression watchdog, and
        # forecast-miss escalation, driven from guard_tick()
        self._guard = CommitGuard(
            self._monitor,
            config=self._config.guard,
            registry=self._telemetry.registry,
            events=self._events,
        )
        self._last_tuning_ms: float | None = None
        self._cached_order: tuple[str, ...] | None = None
        self._runs_since_refresh = 0
        self._last_matrix = None
        # fleet hooks: both stay None outside a fleet, costing nothing
        self._admission: AdmissionHook | None = None
        self._commit_listener: CommitListener | None = None
        # goal-driven mode: with an engine configured every pass goes
        # through plan-propose / plan-evaluate / plan-execute; without
        # one the trigger-reactive path below runs unchanged
        self._policy = policy
        if policy is not None:
            policy.bind(self._telemetry.registry, self._events)
            if not any(
                isinstance(t, ObjectiveViolationTrigger)
                for t in self._triggers
            ):
                self._triggers = [
                    *self._triggers,
                    ObjectiveViolationTrigger(policy),
                ]

    # ------------------------------------------------------------------

    @property
    def config(self) -> OrganizerConfig:
        return self._config

    @property
    def events(self) -> EventLog:
        return self._events

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def store(self) -> ConfigurationInstanceStorage:
        return self._store

    @property
    def monitor(self) -> RuntimeKPIMonitor:
        return self._monitor

    @property
    def last_tuning_ms(self) -> float | None:
        return self._last_tuning_ms

    @property
    def quarantine(self) -> FeatureQuarantine:
        return self._quarantine

    @property
    def guard(self) -> CommitGuard:
        return self._guard

    @property
    def cached_order(self) -> tuple[str, ...] | None:
        return self._cached_order

    @property
    def policy(self) -> PolicyEngine | None:
        """The policy engine, when goal-driven planning is configured."""
        return self._policy

    def set_admission(self, hook: AdmissionHook | None) -> None:
        """Install (or clear) the fleet arbiter's admission hook.

        The hook runs in :meth:`tick` after a trigger fires and the idle
        gate passes, i.e. exactly where this organizer would otherwise
        commit to a pass. Manual :meth:`run_tuning` calls and guard
        escalations bypass it — urgent work is not arbitrated.
        """
        self._admission = hook

    def set_commit_listener(self, listener: CommitListener | None) -> None:
        """Install (or clear) the per-committed-pass callback.

        The fleet arbiter uses it to harvest tuning priors; replayed
        passes (:meth:`replay_pass`) do not re-fire it, so a prior can
        never be harvested from its own replay.
        """
        self._commit_listener = listener

    def _context(self) -> TriggerContext:
        return TriggerContext(
            predictor=self._predictor,
            monitor=self._monitor,
            optimizer=self._optimizer,
            constraints=self._constraints,
            now_ms=self._db.clock.now_ms,
            horizon_bins=self._config.horizon_bins,
            last_tuning_ms=self._last_tuning_ms,
        )

    def policy_status(self):
        """Assess the declared objectives against the current context.

        Returns a :class:`~repro.policy.objectives.PolicyAssessment`, or
        ``None`` when no policy is configured. A pure read: unlike the
        engine's trigger-path assessment it does not advance the
        ``policy_evaluations`` counters.
        """
        if self._policy is None:
            return None
        return self._policy.policy.assess(self._context())

    def evaluate_triggers(self) -> TriggerDecision:
        """First firing trigger wins; otherwise the last negative decision."""
        context = self._context()
        decision = TriggerDecision(False, "none", "no triggers configured")
        for trigger in self._triggers:
            decision = trigger.evaluate(context)
            if decision.should_tune:
                return decision
        return decision

    # ------------------------------------------------------------------

    def tick(self) -> OrganizerRunReport | None:
        """One organizer step: decide, gate, and possibly tune.

        Quiet periods are explainable from the event log: skipping for
        missing history or an active cooldown logs a structured SKIP
        event with the gap that caused it.
        """
        now = self._db.clock.now_ms
        config = self._config
        if not self._predictor.has_enough_history(config.min_history_bins):
            have = self._predictor.history_bins
            self._events.log(
                now,
                EventKind.SKIP,
                f"tuning skipped: {have}/{config.min_history_bins} "
                "history bins observed",
                history_bins=have,
                required_bins=config.min_history_bins,
                missing_bins=max(0, config.min_history_bins - have),
            )
            return None
        if (
            self._last_tuning_ms is not None
            and now - self._last_tuning_ms < config.cooldown_ms
        ):
            remaining = config.cooldown_ms - (now - self._last_tuning_ms)
            self._events.log(
                now,
                EventKind.SKIP,
                f"tuning skipped: cooldown for another {remaining:.0f} ms",
                cooldown_ms=config.cooldown_ms,
                remaining_cooldown_ms=remaining,
                last_tuning_ms=self._last_tuning_ms,
            )
            return None
        decision = self.evaluate_triggers()
        self._events.log(
            now,
            EventKind.TRIGGER,
            f"{decision.trigger}: {decision.reason}",
            should_tune=decision.should_tune,
            **decision.details,
        )
        if not decision.should_tune:
            return None
        urgent = decision.trigger == SlaViolationTrigger.name
        if config.require_idle and not urgent:
            if not self._monitor.is_idle(config.idle_utilization_threshold):
                self._events.log(
                    now,
                    EventKind.SKIP,
                    "tuning deferred: waiting for a low-utilization window",
                    trigger=decision.trigger,
                    **decision.details,
                )
                return None
        if self._admission is not None:
            admitted, reason = self._admission(self, decision)
            if not admitted:
                self._events.log(
                    now,
                    EventKind.SKIP,
                    f"tuning deferred by fleet arbiter: {reason}",
                    trigger=decision.trigger,
                    reason=reason,
                    **decision.details,
                )
                return None
        if self._policy is not None:
            return self.run_policy_pass(decision)
        return self.run_tuning(decision)

    # ------------------------------------------------------------------
    # the guarded-commit hook (driven every driver tick)

    def guard_tick(self) -> OrganizerRunReport | None:
        """Per-tick guard hook: regression watchdog, then escalation.

        Runs more often than :meth:`tick` (every monitor sample, not
        every trigger evaluation): a regressing commit is rolled back as
        soon as the evidence is in, and a forecast miss re-tunes
        immediately instead of waiting for the next periodic trigger.
        Returns the escalation pass report when one ran.
        """
        if not self._config.guard.enabled:
            return None
        now = self._db.clock.now_ms
        confirmed = self._guard.check_regression(now)
        if confirmed is not None:
            commit, verdict = confirmed
            self._rollback_commit(commit, verdict)
        miss = self._guard.check_forecast_miss(now, self._predictor)
        if miss is not None:
            return self._escalate(miss)
        return None

    def _rollback_commit(
        self, commit: ProbationCommit, verdict: RegressionVerdict
    ) -> ApplicationReport:
        """Undo a probation commit through the executor recovery path."""
        executor = self._executor or SequentialExecutor(
            telemetry=self._telemetry
        )
        report = executor.rollback(
            self._db,
            list(commit.inverse_actions),
            (commit.saved_epoch, commit.saved_pool),
        )
        now = self._db.clock.now_ms
        _, offenders = self._guard.resolve_rollback(now)
        self._events.log(
            now,
            EventKind.ROLLBACK,
            f"rolled back commit #{commit.commit_id}: "
            f"{report.rollback_actions} inverse actions undone "
            f"({verdict.metric} regressed {verdict.regression:.0%})",
            commit_id=commit.commit_id,
            actions=report.rollback_actions,
            work_ms=report.rollback_work_ms,
            regression=verdict.regression,
        )
        # a rolled-back commit counts against its features in the same
        # breaker failed applications feed; a repeat offender — commits
        # that keep regressing despite applying cleanly — is force-opened
        for feature in commit.features:
            opened = self._quarantine.record_failure(feature, now)
            if feature in offenders and not opened:
                opened = self._quarantine.open(feature, now)
            if opened:
                self._events.log(
                    now,
                    EventKind.QUARANTINE,
                    f"feature {feature!r} quarantined after its commits "
                    "kept regressing runtime KPIs",
                    feature=feature,
                    state="opened",
                    probation_ms=self._config.quarantine_probation_ms,
                )
        return report

    def _escalate(self, verdict: ForecastMissVerdict) -> OrganizerRunReport | None:
        """Re-tune now: the workload left the forecast envelope.

        The cached tuning order was computed for the old mix, so it is
        invalidated first — the escalation pass re-measures dependencies
        and re-solves the ordering LP against the fresh forecast. With a
        policy configured, the escalation *re-plans*: candidate plans
        are re-proposed and re-evaluated against the declared objectives
        under the fresh forecast instead of blindly re-running the
        reactive pass.
        """
        self._cached_order = None
        decision = TriggerDecision(
            True,
            FORECAST_MISS_TRIGGER,
            f"observed mix {verdict.distance:.2f} TV from nearest "
            f"scenario {verdict.nearest_scenario!r}",
            {"distance": verdict.distance},
        )
        if self._policy is not None:
            self._policy.note_replan()
            self._events.log(
                self._db.clock.now_ms,
                EventKind.POLICY,
                "forecast miss: re-planning against the declared "
                f"objectives ({decision.reason})",
                distance=verdict.distance,
                nearest_scenario=verdict.nearest_scenario,
            )
            return self.run_policy_pass(decision)
        return self.run_tuning(decision)

    def _feature_subset(self, order: tuple[str, ...]) -> tuple[str, ...]:
        budget = self._config.tuning_time_budget_ms
        if budget is None or self._last_matrix is None:
            return order
        allowed = set(
            top_features_by_impact_per_cost(self._last_matrix, budget)
        )
        return tuple(name for name in order if name in allowed)

    def _admit_features(
        self, subset: tuple[str, ...]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Filter ``subset`` through the quarantine breaker.

        Returns ``(admitted, quarantined)`` and logs a QUARANTINE event
        for every blocked feature and every probation re-admission."""
        now = self._db.clock.now_ms
        admitted: list[str] = []
        quarantined: list[str] = []
        for name in subset:
            admission = self._quarantine.admit(name, now)
            if admission is Admission.QUARANTINED:
                quarantined.append(name)
                self._events.log(
                    now,
                    EventKind.QUARANTINE,
                    f"feature {name!r} quarantined for another "
                    f"{self._quarantine.remaining_ms(name, now):.0f} ms",
                    feature=name,
                    state="quarantined",
                    remaining_ms=self._quarantine.remaining_ms(name, now),
                )
                continue
            if admission is Admission.PROBATION:
                self._events.log(
                    now,
                    EventKind.QUARANTINE,
                    f"feature {name!r} re-admitted on probation",
                    feature=name,
                    state="probation",
                )
            admitted.append(name)
        return tuple(admitted), tuple(quarantined)

    def _record_run_outcomes(self, report: RecursiveTuningReport) -> None:
        """Feed per-feature application outcomes into the breaker and
        emit FAULT/ROLLBACK/QUARANTINE events for failed runs."""
        now = self._db.clock.now_ms
        for run in report.runs:
            if not run.failed:
                if self._quarantine.record_success(run.feature):
                    self._events.log(
                        now,
                        EventKind.QUARANTINE,
                        f"feature {run.feature!r} recovered: "
                        "quarantine closed after probation success",
                        feature=run.feature,
                        state="closed",
                    )
                continue
            self._events.log(
                now,
                EventKind.FAULT,
                f"feature {run.feature!r} application failed: {run.failure}",
                feature=run.feature,
                action=run.report.failed_action,
                retries=run.report.retries,
            )
            self._events.log(
                now,
                EventKind.ROLLBACK,
                f"rolled back {run.report.rollback_actions} actions of "
                f"feature {run.feature!r}",
                feature=run.feature,
                actions=run.report.rollback_actions,
                work_ms=run.report.rollback_work_ms,
            )
            if self._quarantine.record_failure(run.feature, now):
                self._events.log(
                    now,
                    EventKind.QUARANTINE,
                    f"feature {run.feature!r} quarantined after "
                    f"{self._quarantine.consecutive_failures(run.feature)} "
                    "consecutive failures",
                    feature=run.feature,
                    state="opened",
                    probation_ms=self._config.quarantine_probation_ms,
                )

    def _begin_pass(
        self, decision: TriggerDecision, mode: str = "reactive"
    ):
        """Shared pass preamble: forecast, guard note, interval, event.

        The forecast this pass tunes for is also the envelope the guard
        later judges the live workload against (forecast-miss
        detection). Per-pass metric deltas come from a registry interval
        read, so any counter a component registers (cache, executor,
        policy engine, future subsystems) is automatically measurable
        over the pass.
        """
        now = self._db.clock.now_ms
        forecast = self._predictor.forecast(self._config.horizon_bins)
        self._guard.note_forecast(forecast)
        interval = self._telemetry.registry.interval()
        label = "tuning" if mode == "reactive" else "policy"
        self._events.log(
            now,
            EventKind.TUNING_STARTED,
            f"{label} pass triggered by {decision.trigger}",
            trigger=decision.trigger,
            **decision.details,
        )
        return forecast, interval

    def _select_features(
        self, forecast: "Forecast", pass_span
    ) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]] | None:
        """Plan-propose prologue shared by both pass kinds: refresh the
        LP ordering when due, then filter the ordered features through
        the tuning-time budget and the quarantine breaker.

        Returns ``(subset, skipped, quarantined)``, or ``None`` when no
        feature survives — such a pass does no work, so it must not
        append a configuration record, restart the cooldown, or count
        against the order-refresh cadence.
        """
        refresh = (
            self._cached_order is None
            or self._runs_since_refresh >= self._config.order_refresh_every
        )
        if refresh and len(self._tuners) >= 2:
            with self._tracer.span("order_refresh") as order_span:
                matrix, solution = self._planner.plan_order(forecast)
                order_span.tag(
                    order=" -> ".join(solution.order),
                    objective=solution.objective,
                )
            self._cached_order = solution.order
            self._last_matrix = matrix
            self._runs_since_refresh = 0
            self._events.log(
                self._db.clock.now_ms,
                EventKind.ORDER_PLANNED,
                f"tuning order: {' -> '.join(solution.order)}",
                objective=solution.objective,
                solve_seconds=solution.solve_seconds,
            )
        order = self._cached_order or self._planner.feature_names
        subset = self._feature_subset(order)
        skipped = tuple(name for name in order if name not in subset)
        if not subset:
            self._events.log(
                self._db.clock.now_ms,
                EventKind.SKIP,
                "tuning skipped: time budget admits no feature",
                budget_ms=self._config.tuning_time_budget_ms,
                skipped=len(skipped),
            )
            pass_span.tag(skipped="time budget admits no feature")
            return None
        subset, quarantined = self._admit_features(subset)
        if not subset:
            self._events.log(
                self._db.clock.now_ms,
                EventKind.SKIP,
                "tuning skipped: all features quarantined",
                quarantined=list(quarantined),
            )
            pass_span.tag(skipped="all features quarantined")
            return None
        self._runs_since_refresh += 1
        return subset, skipped, quarantined

    def _commit_pass(
        self,
        decision: TriggerDecision,
        interval,
        pass_span,
        pre_pass,
        report: RecursiveTuningReport,
    ) -> int:
        """Plan-execute epilogue shared by both pass kinds: feed outcomes
        to the breaker, append configuration records, open guard
        probation, and log the TUNING_FINISHED accounting."""
        self._last_tuning_ms = self._db.clock.now_ms
        self._record_run_outcomes(report)

        # failed runs were rolled back: they contribute no actions,
        # no predicted benefit, and no feedback training pairs
        ok_runs = [r for r in report.runs if not r.failed]
        predicted = sum(r.result.predicted_benefit_ms for r in ok_runs)
        measured = report.initial_cost_ms - report.final_cost_ms
        record = ConfigurationRecord(
            instance=ConfigurationInstance.capture(self._db),
            applied_at_ms=self._db.clock.now_ms,
            trigger=decision.trigger,
            feature=None,
            action_summaries=[
                summary
                for r in ok_runs
                for summary in r.report.action_summaries
            ],
            predicted_benefit_ms=predicted,
            reconfiguration_cost_ms=report.total_reconfiguration_ms,
            measured_benefit_ms=measured,
        )
        record_id = self._store.append(record)
        # also store one record per feature so per-feature feedback
        # learning (LearnedFeedbackAssessor) has training pairs
        for r in ok_runs:
            self._store.append(
                ConfigurationRecord(
                    instance=record.instance,
                    applied_at_ms=record.applied_at_ms,
                    trigger=decision.trigger,
                    feature=r.feature,
                    action_summaries=list(r.report.action_summaries),
                    predicted_benefit_ms=r.result.predicted_benefit_ms,
                    reconfiguration_cost_ms=r.report.total_work_ms,
                    measured_benefit_ms=r.cost_before_ms - r.cost_after_ms,
                )
            )
        # the committed pass enters probation: its inverse actions are
        # retained instead of discarded, so a confirmed KPI regression
        # can undo it bit-identically (see repro.guard)
        saved_epoch, saved_pool = pre_pass
        self._guard.open_probation(
            self._db.clock.now_ms,
            features=tuple(
                r.feature for r in ok_runs if r.report.action_summaries
            ),
            inverse_actions=tuple(
                a for r in ok_runs for a in r.report.inverse_actions
            ),
            saved_epoch=saved_epoch,
            saved_pool=saved_pool,
            record_id=record_id,
        )
        deltas = interval.deltas()
        cache_hits = int(deltas.get(WHATIF_CACHE_HITS, 0.0))
        cache_misses = int(deltas.get(WHATIF_CACHE_MISSES, 0.0))
        cache_priced = cache_hits + cache_misses
        pass_span.tag(
            improvement=round(report.improvement, 4),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )
        if report.failed_features:
            pass_span.tag(failed_features=len(report.failed_features))
        self._events.log(
            self._db.clock.now_ms,
            EventKind.TUNING_FINISHED,
            f"workload cost {report.initial_cost_ms:.2f} -> "
            f"{report.final_cost_ms:.2f} ms "
            f"(what-if cache: {cache_hits} hits / {cache_misses} misses)",
            improvement=report.improvement,
            # reconfiguration_ms records *work* (sum of per-action
            # costs), not elapsed wall time; see tuning/executors/base.py
            reconfiguration_ms=report.total_reconfiguration_ms,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_evictions=int(deltas.get(WHATIF_CACHE_EVICTIONS, 0.0)),
            cache_hit_rate=(
                cache_hits / cache_priced if cache_priced else 0.0
            ),
        )
        return record_id

    def run_tuning(
        self, decision: TriggerDecision | None = None
    ) -> OrganizerRunReport | None:
        """Run one full trigger-reactive tuning pass (also callable
        manually).

        Returns ``None`` when the tuning-time budget admits no feature:
        a zero-feature pass would do no work, so it must not append a
        configuration record, restart the cooldown, or count against the
        order-refresh cadence.
        """
        decision = decision or TriggerDecision(True, "manual", "manual request")
        forecast, interval = self._begin_pass(decision)

        with self._tracer.span(
            "tuning_pass", trigger=decision.trigger
        ) as pass_span:
            selected = self._select_features(forecast, pass_span)
            if selected is None:
                return None
            subset, skipped, quarantined = selected

            # pre-pass state for a possible post-commit (guard) rollback:
            # the same snapshot the executors take per application
            pre_pass = TuningExecutor.snapshot(self._db)
            report = self._planner.run(
                forecast, order=subset, executor=self._executor
            )
            record_id = self._commit_pass(
                decision, interval, pass_span, pre_pass, report
            )
        run_report = OrganizerRunReport(
            decision=decision,
            order=subset,
            tuning=report,
            record_id=record_id,
            tuned_features=subset,
            skipped_features=skipped,
            quarantined_features=quarantined,
        )
        if self._commit_listener is not None:
            self._commit_listener(self, run_report)
        return run_report

    def run_policy_pass(
        self, decision: TriggerDecision | None = None
    ) -> OrganizerRunReport | None:
        """Run one goal-driven pass: plan-propose, plan-evaluate,
        plan-execute.

        The LP ordering, the tuning-time budget, and the quarantine
        breaker gate the candidate features exactly as in the reactive
        path; the difference is that every admitted feature first
        *proposes* (applying nothing), the proposed plan prefixes are
        priced against the declared objectives with the batched what-if
        oracle, and only the chosen alternative is executed — under
        guard probation like any other pass.
        """
        engine = self._policy
        if engine is None:
            return self.run_tuning(decision)
        decision = decision or TriggerDecision(
            True, POLICY_TRIGGER, "manual policy pass"
        )
        forecast, interval = self._begin_pass(decision, mode="policy")

        with self._tracer.span(
            "tuning_pass", trigger=decision.trigger, mode="policy"
        ) as pass_span:
            selected = self._select_features(forecast, pass_span)
            if selected is None:
                return None
            subset, skipped, quarantined = selected

            with self._tracer.span("plan_propose") as propose_span:
                steps = engine.propose_steps(
                    tuners=self._planner.tuners,
                    order=subset,
                    forecast=forecast,
                    constraints=self._constraints,
                    optimizer=self._optimizer,
                )
                propose_span.tag(steps=len(steps))
            if not steps:
                # an empty plan still counts as an attempt: objectives
                # that no feature can improve must not re-propose every
                # tick, so the cooldown restarts (unlike a zero-feature
                # budget skip, where no work was even possible)
                now = self._db.clock.now_ms
                self._last_tuning_ms = now
                self._events.log(
                    now,
                    EventKind.SKIP,
                    "policy pass skipped: no feature proposes a change",
                    trigger=decision.trigger,
                    **decision.details,
                )
                pass_span.tag(skipped="empty plan")
                return None

            with self._tracer.span("plan_evaluate") as eval_span:
                plan_report = engine.evaluate_plans(
                    steps=steps,
                    forecast=forecast,
                    optimizer=self._optimizer,
                    db=self._db,
                    context=self._context(),
                )
                chosen = plan_report.chosen
                eval_span.tag(
                    alternatives=len(plan_report.alternatives),
                    chosen=len(chosen.steps),
                    feasible=chosen.feasible,
                )
            self._events.log(
                self._db.clock.now_ms,
                EventKind.POLICY,
                f"plan chosen: {' -> '.join(chosen.features)} "
                f"({'meets' if chosen.feasible else 'closest to'} the "
                f"declared objectives; predicted workload "
                f"{plan_report.baseline_cost_ms:.2f} -> "
                f"{chosen.metrics.expected_cost_ms:.2f} ms)",
                trigger=decision.trigger,
                features=list(chosen.features),
                alternatives=len(plan_report.alternatives),
                feasible=chosen.feasible,
                baseline_cost_ms=plan_report.baseline_cost_ms,
                predicted_cost_ms=chosen.metrics.expected_cost_ms,
                score=chosen.score,
                **{
                    f"{s.name}_margin": s.margin for s in chosen.statuses
                },
            )

            pre_pass = TuningExecutor.snapshot(self._db)
            report = self._planner.run(
                forecast,
                order=chosen.features,
                executor=self._executor,
                proposals={s.feature: s.result for s in chosen.steps},
            )
            engine.note_executed(chosen)
            record_id = self._commit_pass(
                decision, interval, pass_span, pre_pass, report
            )
        in_plan = set(chosen.features)
        dropped = tuple(name for name in subset if name not in in_plan)
        run_report = OrganizerRunReport(
            decision=decision,
            order=chosen.features,
            tuning=report,
            record_id=record_id,
            tuned_features=chosen.features,
            skipped_features=skipped + dropped,
            quarantined_features=quarantined,
            plan=plan_report,
        )
        if self._commit_listener is not None:
            self._commit_listener(self, run_report)
        return run_report

    # ------------------------------------------------------------------
    # fleet prior replay

    def replay_pass(
        self,
        actions: Sequence["Action"],
        *,
        features: tuple[str, ...] = (),
        source: str = "",
        predicted_benefit_ms: float = 0.0,
        cost_before_ms: float = 0.0,
        cost_after_ms: float = 0.0,
        forecast: "Forecast | None" = None,
    ) -> ApplicationReport | None:
        """Apply a committed pass harvested from a look-alike tenant.

        The cheap path of fleet tuning: instead of enumerating and
        assessing candidates, the forward ``actions`` of a pass another
        tenant already committed are applied through the failure-aware
        executor, recorded in the configuration store, and put on guard
        probation exactly like a locally tuned pass — the regression
        watchdog treats replayed and tuned commits identically. Callers
        (the fleet arbiter) are expected to have what-if validated the
        delta first; ``cost_before_ms``/``cost_after_ms`` carry that
        validation's pricing into the record. ``forecast`` — typically
        the cluster-level forecast the prior was validated against — is
        noted with the guard so forecast-miss escalation covers replayed
        tenants too. Counts as a tuning for cooldown/trigger purposes;
        does not re-fire the commit listener (no priors from replays).
        """
        if not actions:
            return None
        now = self._db.clock.now_ms
        self._events.log(
            now,
            EventKind.TUNING_STARTED,
            f"replaying committed pass from {source or 'prior'} "
            f"({len(actions)} actions)",
            trigger=FLEET_REPLAY_TRIGGER,
            source=source,
            actions=len(actions),
        )
        if forecast is not None:
            self._guard.note_forecast(forecast)
        executor = self._executor or SequentialExecutor(
            telemetry=self._telemetry
        )
        pre_pass = TuningExecutor.snapshot(self._db)
        delta = ConfigurationDelta(list(actions))
        with self._tracer.span(
            "replay_pass", source=source, actions=len(actions)
        ) as span:
            try:
                report = executor.execute(delta, self._db)
            except TuningAbortedError as exc:
                report = exc.report
                now = self._db.clock.now_ms
                self._last_tuning_ms = now
                span.tag(failed=True)
                self._events.log(
                    now,
                    EventKind.FAULT,
                    f"replayed pass from {source or 'prior'} failed: "
                    f"{exc}",
                    source=source,
                    action=report.failed_action,
                    retries=report.retries,
                )
                self._events.log(
                    now,
                    EventKind.ROLLBACK,
                    f"rolled back {report.rollback_actions} actions of "
                    "failed replay",
                    source=source,
                    actions=report.rollback_actions,
                    work_ms=report.rollback_work_ms,
                )
                return report
            now = self._db.clock.now_ms
            self._last_tuning_ms = now
            record_id = self._store.append(
                ConfigurationRecord(
                    instance=ConfigurationInstance.capture(self._db),
                    applied_at_ms=now,
                    trigger=FLEET_REPLAY_TRIGGER,
                    feature=None,
                    action_summaries=list(report.action_summaries),
                    predicted_benefit_ms=predicted_benefit_ms,
                    reconfiguration_cost_ms=report.total_work_ms,
                    measured_benefit_ms=cost_before_ms - cost_after_ms,
                )
            )
            saved_epoch, saved_pool = pre_pass
            self._guard.open_probation(
                now,
                features=features,
                inverse_actions=tuple(report.inverse_actions),
                saved_epoch=saved_epoch,
                saved_pool=saved_pool,
                record_id=record_id,
            )
            span.tag(
                record_id=record_id,
                predicted_benefit_ms=round(predicted_benefit_ms, 3),
            )
            self._events.log(
                now,
                EventKind.TUNING_FINISHED,
                f"replayed pass from {source or 'prior'} applied: "
                f"what-if {cost_before_ms:.2f} -> {cost_after_ms:.2f} ms "
                f"({len(report.action_summaries)} actions)",
                source=source,
                predicted_benefit_ms=predicted_benefit_ms,
                reconfiguration_ms=report.total_work_ms,
                cost_before_ms=cost_before_ms,
                cost_after_ms=cost_after_ms,
            )
        return report
