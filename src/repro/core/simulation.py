"""Closed-loop simulation: replay a workload trace against a live database
with the self-management loop ticking at bin boundaries.

This is the harness behind the end-to-end experiments (F1, E4, E6, E8):
trace bins drive query executions, the simulated clock idles through the
rest of each bin, and attached plugins (the driver) get their tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.database import Database
from repro.util.rng import derive_rng
from repro.workload.trace import WorkloadTrace


@dataclass
class BinRecord:
    """Measured outcome of one replayed trace bin."""

    index: int
    queries_executed: int
    workload_ms: float
    reconfiguration_ms: float
    mean_query_ms: float
    now_ms: float
    #: whether any reconfiguration happened in this bin
    reconfigured: bool = False


@dataclass
class PendingBin:
    """A bin whose queries ran but whose plugin tick is still owed.

    :meth:`ClosedLoopSimulation.execute_bin` returns one of these;
    :meth:`ClosedLoopSimulation.finish_bin` consumes it. The split is
    what makes fleet bins parallelizable: query execution touches only
    the tenant's own state and can run concurrently across tenants,
    while the tick — where the self-management loop (and with it the
    fleet arbiter) runs — is serialized at a deterministic barrier.
    Only scalars live here, so a pending bin crosses process
    boundaries for free.
    """

    index: int
    start_queries: int
    start_query_ms: float
    start_reconf_ms: float


class ClosedLoopSimulation:
    """Replays a trace, bin by bin, ticking plugins at bin boundaries."""

    def __init__(self, db: Database, trace: WorkloadTrace, seed: int = 0) -> None:
        self._db = db
        self._trace = trace
        self._seed = seed

    @property
    def database(self) -> Database:
        return self._db

    @property
    def trace(self) -> WorkloadTrace:
        return self._trace

    @property
    def seed(self) -> int:
        return self._seed

    def execute_bin(self, bin_index: int) -> PendingBin:
        """Execute one bin's queries and idle to the bin boundary.

        No plugin ticks run: pair with :meth:`finish_bin`, which ticks
        the plugin host and assembles the :class:`BinRecord`.
        """
        db = self._db
        trace_bin = self._trace.bins[bin_index]
        rng = derive_rng(self._seed, f"sim-bin-{trace_bin.index}")
        families = self._trace.families

        # interleave families fairly: expand, then shuffle
        schedule: list[str] = []
        for name, count in trace_bin.counts.items():
            schedule.extend([name] * count)
        rng.shuffle(schedule)

        pending = PendingBin(
            index=trace_bin.index,
            start_queries=db.counters.queries_executed,
            start_query_ms=db.counters.total_query_ms,
            start_reconf_ms=db.counters.total_reconfiguration_ms,
        )
        bin_started = db.clock.now_ms

        for name in schedule:
            query = families[name].sample(rng)
            db.execute(query)

        # idle through the remainder of the bin
        busy = db.clock.now_ms - bin_started
        if busy < trace_bin.duration_ms:
            db.clock.advance(trace_bin.duration_ms - busy)
        return pending

    def finish_bin(self, pending: PendingBin) -> BinRecord:
        """Tick the plugin host and close out an executed bin."""
        db = self._db
        db.plugin_host.tick(db.clock.now_ms)

        queries = db.counters.queries_executed - pending.start_queries
        workload_ms = db.counters.total_query_ms - pending.start_query_ms
        reconf_ms = (
            db.counters.total_reconfiguration_ms - pending.start_reconf_ms
        )
        return BinRecord(
            index=pending.index,
            queries_executed=queries,
            workload_ms=workload_ms,
            reconfiguration_ms=reconf_ms,
            mean_query_ms=workload_ms / queries if queries else 0.0,
            now_ms=db.clock.now_ms,
            reconfigured=reconf_ms > 0,
        )

    def run_bin(self, bin_index: int) -> BinRecord:
        """Execute the queries of one bin and tick the plugin host."""
        return self.finish_bin(self.execute_bin(bin_index))

    def run(self, start: int = 0, stop: int | None = None) -> list[BinRecord]:
        """Replay bins ``[start, stop)``; returns one record per bin."""
        stop = len(self._trace) if stop is None else stop
        return [self.run_bin(i) for i in range(start, stop)]
