"""The Driver: the framework's top-level facade, attached as a plugin.

"The driver is the central entity encapsulating all the other components
that are responsible for adding self-management capabilities" (Section
II-A). Following the paper's implementation strategy (Section II-B), the
driver integrates through the database's plugin infrastructure: it gets
direct access to internals without the core knowing about self-management,
and detaching it leaves the database fully functional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.configuration.constraints import ConstraintSet
from repro.core.events import EventKind
from repro.core.organizer import OrganizerConfig, OrganizerRunReport
from repro.core.triggers import TuningTrigger
from repro.dbms.database import Database
from repro.dbms.plugin import Plugin
from repro.errors import PluginError
from repro.faults.injector import FaultConfig
from repro.faults.recovery import RetryPolicy
from repro.forecasting.analyzer import AnalyzerConfig
from repro.forecasting.models.ensemble import ModelFactory
from repro.telemetry import TelemetryConfig
from repro.tuning.features.base import FeatureTuner
from repro.tuning.selectors.base import Selector

if TYPE_CHECKING:
    from repro.policy.config import PolicyConfig


@dataclass
class DriverConfig:
    """Construction parameters of the driver and its components."""

    #: duration of one observation bin (predictor time resolution)
    bin_duration_ms: float = 60_000.0
    #: evaluate triggers every N ticks (observation happens every tick)
    check_every_ticks: int = 1
    organizer: OrganizerConfig = field(default_factory=OrganizerConfig)
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    #: seasonal period (bins) for the default forecast model
    default_seasonal_period: int = 24
    #: price candidates with a continuously-maintained learned cost model
    #: instead of measured what-if execution (the low-overhead production
    #: mode of §II-A.d / §V); runs startup calibration on attach
    fast_assessment: bool = False
    #: the telemetry spine (spans, metric registry, sinks) shared by every
    #: component the driver wires up; see docs/telemetry.md
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: inject seeded action/probe faults when set; see docs/robustness.md
    faults: FaultConfig | None = None
    #: backoff policy for retrying transient action failures
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: tenant id labelling every event, span record, and ledger this
    #: driver's components produce ('' = single-tenant; see docs/fleet.md)
    tenant: str = ""
    #: declared objectives for goal-driven planning; when set the
    #: organizer runs plan-propose / plan-evaluate / plan-execute passes
    #: instead of the trigger-reactive path (see docs/policy.md)
    policy: "PolicyConfig | None" = None


class Driver(Plugin):
    """Encapsulates predictor, tuners, and organizer; attaches as a plugin."""

    def __init__(
        self,
        features: list[FeatureTuner],
        constraints: ConstraintSet | None = None,
        model_factory: ModelFactory | None = None,
        selector: Selector | None = None,
        triggers: list[TuningTrigger] | None = None,
        config: DriverConfig | None = None,
        reconfiguration_weight: float = 0.0,
    ) -> None:
        if not features:
            raise PluginError("the driver needs at least one feature tuner")
        self._features = features
        self._constraints = constraints or ConstraintSet()
        self._config = config or DriverConfig()
        # None defers to TenantContext.wire's default (a SeasonalNaive
        # over config.default_seasonal_period)
        self._model_factory = model_factory
        self._selector = selector
        self._triggers = triggers
        self._reconfiguration_weight = reconfiguration_weight
        self._db: Database | None = None
        self._ticks = 0

    # ------------------------------------------------------------------
    # plugin lifecycle

    @property
    def name(self) -> str:
        return "self-driving"

    def on_attach(self, database: Database) -> None:
        self._db = database
        # all component construction lives in TenantContext.wire — the
        # single-tenant driver is literally a one-tenant fleet. Imported
        # lazily: repro.fleet imports this module for FleetDriver, so a
        # module-level import would close a cycle through its __init__.
        from repro.fleet.context import TenantContext

        self.context = TenantContext.wire(
            database,
            features=self._features,
            config=self._config,
            constraints=self._constraints,
            model_factory=self._model_factory,
            selector=self._selector,
            triggers=self._triggers,
            reconfiguration_weight=self._reconfiguration_weight,
            tenant=self._config.tenant,
        )
        # the context's components double as driver attributes so the
        # pre-fleet public surface (driver.organizer, driver.events, …)
        # is unchanged
        ctx = self.context
        self.telemetry = ctx.telemetry
        self.events = ctx.events
        self.store = ctx.store
        self.monitor = ctx.monitor
        self.predictor = ctx.predictor
        self.cost_maintenance = ctx.cost_maintenance
        self.injector = ctx.injector
        self.optimizer = ctx.optimizer
        self.executor = ctx.executor
        self.tuners = ctx.tuners
        self.organizer = ctx.organizer
        self.events.log(
            database.clock.now_ms,
            EventKind.OBSERVE,
            f"driver attached with features "
            f"{[f.name for f in self._features]}",
        )

    def on_detach(self) -> None:
        # configuration changes persist; only the loop stops
        if self._db is not None:
            self.events.log(
                self._db.clock.now_ms, EventKind.OBSERVE, "driver detached"
            )
            self.context.close()
        self._db = None

    # ------------------------------------------------------------------
    # the self-management loop

    @property
    def database(self) -> Database:
        if self._db is None:
            raise PluginError("driver is not attached to a database")
        return self._db

    def on_tick(self, now_ms: float) -> None:
        """One loop iteration: observe, monitor, maybe tune."""
        db = self.database
        self.predictor.observe()
        self.monitor.sample()
        # the commit guard runs every tick, not every check interval: a
        # regressing commit rolls back as soon as the evidence is in, and
        # a forecast miss escalates without waiting for a trigger pass
        guard_report = self.organizer.guard_tick()
        if guard_report is not None:
            self.events.log(
                db.clock.now_ms,
                EventKind.APPLY,
                f"applied escalation tuning pass over {guard_report.order}",
            )
        if self.cost_maintenance is not None:
            self.cost_maintenance.on_tick(now_ms)
        self._ticks += 1
        if self._ticks % self._config.check_every_ticks == 0:
            report = self.organizer.tick()
            if report is not None:
                self.events.log(
                    db.clock.now_ms,
                    EventKind.APPLY,
                    f"applied tuning pass over {report.order}",
                )

    def tune_now(self) -> OrganizerRunReport | None:
        """Force a tuning pass immediately (manual mode).

        Returns ``None`` when the organizer skips the pass because the
        tuning-time budget admits no feature.
        """
        return self.organizer.run_tuning()
