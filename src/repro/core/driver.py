"""The Driver: the framework's top-level facade, attached as a plugin.

"The driver is the central entity encapsulating all the other components
that are responsible for adding self-management capabilities" (Section
II-A). Following the paper's implementation strategy (Section II-B), the
driver integrates through the database's plugin infrastructure: it gets
direct access to internals without the core knowing about self-management,
and detaching it leaves the database fully functional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.configuration.constraints import ConstraintSet
from repro.configuration.store import ConfigurationInstanceStorage
from repro.core.events import EventKind, EventLog
from repro.core.organizer import Organizer, OrganizerConfig, OrganizerRunReport
from repro.core.triggers import TuningTrigger
from repro.cost.calibration import run_design_exploration
from repro.cost.maintenance import AdaptiveCostMaintenancePlugin
from repro.cost.what_if import WhatIfOptimizer
from repro.dbms.database import Database
from repro.dbms.plugin import Plugin
from repro.errors import PluginError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.recovery import RetryPolicy
from repro.forecasting.analyzer import AnalyzerConfig, WorkloadAnalyzer
from repro.forecasting.models.ensemble import ModelFactory
from repro.forecasting.models.seasonal import SeasonalNaive
from repro.forecasting.predictor import WorkloadPredictor
from repro.kpi.monitor import RuntimeKPIMonitor
from repro.telemetry import Telemetry, TelemetryConfig
from repro.tuning.executors.sequential import SequentialExecutor
from repro.tuning.features.base import FeatureTuner
from repro.tuning.selectors.base import Selector
from repro.tuning.tuner import Tuner


@dataclass
class DriverConfig:
    """Construction parameters of the driver and its components."""

    #: duration of one observation bin (predictor time resolution)
    bin_duration_ms: float = 60_000.0
    #: evaluate triggers every N ticks (observation happens every tick)
    check_every_ticks: int = 1
    organizer: OrganizerConfig = field(default_factory=OrganizerConfig)
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    #: seasonal period (bins) for the default forecast model
    default_seasonal_period: int = 24
    #: price candidates with a continuously-maintained learned cost model
    #: instead of measured what-if execution (the low-overhead production
    #: mode of §II-A.d / §V); runs startup calibration on attach
    fast_assessment: bool = False
    #: the telemetry spine (spans, metric registry, sinks) shared by every
    #: component the driver wires up; see docs/telemetry.md
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: inject seeded action/probe faults when set; see docs/robustness.md
    faults: FaultConfig | None = None
    #: backoff policy for retrying transient action failures
    retry: RetryPolicy = field(default_factory=RetryPolicy)


class Driver(Plugin):
    """Encapsulates predictor, tuners, and organizer; attaches as a plugin."""

    def __init__(
        self,
        features: list[FeatureTuner],
        constraints: ConstraintSet | None = None,
        model_factory: ModelFactory | None = None,
        selector: Selector | None = None,
        triggers: list[TuningTrigger] | None = None,
        config: DriverConfig | None = None,
        reconfiguration_weight: float = 0.0,
    ) -> None:
        if not features:
            raise PluginError("the driver needs at least one feature tuner")
        self._features = features
        self._constraints = constraints or ConstraintSet()
        self._config = config or DriverConfig()
        self._model_factory = model_factory or (
            lambda: SeasonalNaive(self._config.default_seasonal_period)
        )
        self._selector = selector
        self._triggers = triggers
        self._reconfiguration_weight = reconfiguration_weight
        self._db: Database | None = None
        self._ticks = 0

    # ------------------------------------------------------------------
    # plugin lifecycle

    @property
    def name(self) -> str:
        return "self-driving"

    def on_attach(self, database: Database) -> None:
        self._db = database
        # one telemetry spine for every component the driver wires up:
        # spans and events flow through its sinks, counters through its
        # registry, and the monitor derives interval KPIs from the latter
        self.telemetry = Telemetry(database.clock, self._config.telemetry)
        self.events = EventLog(
            sink=self.telemetry.sink if self.telemetry.enabled else None
        )
        self.store = ConfigurationInstanceStorage()
        self.monitor = RuntimeKPIMonitor(
            database, registry=self.telemetry.registry
        )
        analyzer = WorkloadAnalyzer(self._model_factory, self._config.analyzer)
        self.predictor = WorkloadPredictor(
            database, analyzer, bin_duration_ms=self._config.bin_duration_ms
        )
        self.cost_maintenance: AdaptiveCostMaintenancePlugin | None = None
        if self._config.fast_assessment:
            # the driver owns the maintenance plugin directly (composition,
            # not host registration) and ticks it from its own loop
            self.cost_maintenance = AdaptiveCostMaintenancePlugin()
            self.cost_maintenance.on_attach(database)
            run_design_exploration(database, self.cost_maintenance.model)
        # seeded fault injection (off unless configured): the injector
        # gates executor applications and perturbs what-if probes, with
        # its counters in the shared registry
        self.injector: FaultInjector | None = None
        if self._config.faults is not None:
            self.injector = FaultInjector(
                self._config.faults, registry=self.telemetry.registry
            )
        # one shared what-if optimizer: the organizer, the dependence
        # analyzer, and every feature's default assessor price through the
        # same epoch-keyed cost cache (and its KPI counters)
        self.optimizer = WhatIfOptimizer(
            database, registry=self.telemetry.registry, injector=self.injector
        )
        # one failure-aware executor for every tuning application:
        # retries transients, rolls back on permanent failure
        self.executor = SequentialExecutor(
            injector=self.injector,
            retry=self._config.retry,
            telemetry=self.telemetry,
        )
        self.tuners = []
        for feature in self._features:
            assessor = None
            if self.cost_maintenance is not None:
                assessor = feature.make_fast_assessor(
                    database, self.cost_maintenance.model
                )
            self.tuners.append(
                Tuner(
                    feature,
                    database,
                    assessor=assessor,
                    selector=self._selector,
                    reconfiguration_weight=self._reconfiguration_weight,
                    optimizer=self.optimizer,
                    telemetry=self.telemetry,
                )
            )
        self.organizer = Organizer(
            database,
            self.predictor,
            self.tuners,
            constraints=self._constraints,
            monitor=self.monitor,
            store=self.store,
            events=self.events,
            triggers=self._triggers,
            config=self._config.organizer,
            optimizer=self.optimizer,
            executor=self.executor,
            telemetry=self.telemetry,
        )
        # sampled per-query spans + exec work counters from the executor
        database.executor.bind_telemetry(self.telemetry)
        if self.telemetry.enabled:
            # compiled-plan compile/cache counters from the shared planner
            database.planner.bind_registry(
                self.telemetry.registry, replace=True
            )
        self.events.log(
            database.clock.now_ms,
            EventKind.OBSERVE,
            f"driver attached with features "
            f"{[f.name for f in self._features]}",
        )

    def on_detach(self) -> None:
        # configuration changes persist; only the loop stops
        if self._db is not None:
            self.events.log(
                self._db.clock.now_ms, EventKind.OBSERVE, "driver detached"
            )
            self._db.executor.bind_telemetry(None)
            self.telemetry.close()
        self._db = None

    # ------------------------------------------------------------------
    # the self-management loop

    @property
    def database(self) -> Database:
        if self._db is None:
            raise PluginError("driver is not attached to a database")
        return self._db

    def on_tick(self, now_ms: float) -> None:
        """One loop iteration: observe, monitor, maybe tune."""
        db = self.database
        self.predictor.observe()
        self.monitor.sample()
        # the commit guard runs every tick, not every check interval: a
        # regressing commit rolls back as soon as the evidence is in, and
        # a forecast miss escalates without waiting for a trigger pass
        guard_report = self.organizer.guard_tick()
        if guard_report is not None:
            self.events.log(
                db.clock.now_ms,
                EventKind.APPLY,
                f"applied escalation tuning pass over {guard_report.order}",
            )
        if self.cost_maintenance is not None:
            self.cost_maintenance.on_tick(now_ms)
        self._ticks += 1
        if self._ticks % self._config.check_every_ticks == 0:
            report = self.organizer.tick()
            if report is not None:
                self.events.log(
                    db.clock.now_ms,
                    EventKind.APPLY,
                    f"applied tuning pass over {report.order}",
                )

    def tune_now(self) -> OrganizerRunReport | None:
        """Force a tuning pass immediately (manual mode).

        Returns ``None`` when the organizer skips the pass because the
        tuning-time budget admits no feature.
        """
        return self.organizer.run_tuning()
