"""Event log of self-management decisions and actions.

Everything the driver and organizer do is recorded here, so experiments can
explain *why* a configuration changed (which trigger fired, what was
forecast, what was applied) — the observability layer a self-managing
system needs to be debuggable.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.telemetry.sinks import TelemetrySink


class EventKind(enum.Enum):
    OBSERVE = "observe"
    TRIGGER = "trigger"
    SKIP = "skip"
    TUNING_STARTED = "tuning_started"
    TUNING_FINISHED = "tuning_finished"
    ORDER_PLANNED = "order_planned"
    APPLY = "apply"
    ERROR = "error"
    FAULT = "fault"
    ROLLBACK = "rollback"
    QUARANTINE = "quarantine"
    GUARD = "guard"
    POLICY = "policy"
    #: a durable fleet checkpoint was written (fleet-level; see
    #: repro.fleet.checkpoint)
    CHECKPOINT = "checkpoint"
    #: the fleet recovered management-layer state — a worker restart, a
    #: checkpoint restore, or a tenant force-quarantined after its
    #: context repeatedly failed to restore
    RECOVERY = "recovery"


@dataclass(frozen=True)
class Event:
    """One logged self-management event.

    ``tenant`` identifies the tenant whose log recorded the event in a
    fleet run; single-tenant runs use the empty string. It does not take
    part in equality, so a one-tenant fleet's events compare equal to a
    legacy single-tenant run's.
    """

    at_ms: float
    kind: EventKind
    message: str
    data: dict[str, object] = field(default_factory=dict)
    tenant: str = field(default="", compare=False)


class EventLog:
    """Bounded in-memory event history.

    Also a facade over the telemetry sink layer: when a sink is attached
    every event is additionally emitted as a structured record (type
    ``"event"``), so the span ring / JSONL export and the event log tell
    one consistent story. The in-memory API is unchanged either way.

    In a fleet each tenant owns one log constructed with its tenant id;
    every event and sink record carries it, so interleaved JSONL output
    from concurrent tenants stays separable.
    """

    def __init__(
        self,
        capacity: int = 1024,
        sink: "TelemetrySink | None" = None,
        tenant: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._sink = sink
        self._tenant = tenant

    @property
    def tenant(self) -> str:
        """Tenant id stamped on every event ('' for single-tenant)."""
        return self._tenant

    def attach_sink(self, sink: "TelemetrySink | None") -> None:
        """Start (or stop, with ``None``) mirroring events into a sink."""
        self._sink = sink

    def log(
        self,
        at_ms: float,
        kind: EventKind,
        message: str,
        **data: object,
    ) -> Event:
        event = Event(
            at_ms=at_ms,
            kind=kind,
            message=message,
            data=data,
            tenant=self._tenant,
        )
        self._events.append(event)
        if self._sink is not None:
            self._sink.emit(
                {
                    "type": "event",
                    "tenant": self._tenant,
                    "at_ms": at_ms,
                    "kind": kind.value,
                    "message": message,
                    "data": dict(data),
                }
            )
        return event

    def events(self, kind: EventKind | None = None) -> tuple[Event, ...]:
        if kind is None:
            return tuple(self._events)
        return tuple(e for e in self._events if e.kind is kind)

    def __len__(self) -> int:
        return len(self._events)

    def latest(self, kind: EventKind | None = None) -> Event | None:
        events = self.events(kind)
        return events[-1] if events else None
