"""The framework core: driver, organizer, triggers, events, simulation."""

from repro.core.component import ComponentRegistry, default_registry
from repro.core.driver import Driver, DriverConfig
from repro.core.events import Event, EventKind, EventLog
from repro.core.organizer import Organizer, OrganizerConfig, OrganizerRunReport
from repro.core.simulation import BinRecord, ClosedLoopSimulation
from repro.core.triggers import (
    ForecastDriftTrigger,
    NeverTrigger,
    PeriodicTrigger,
    SlaViolationTrigger,
    TriggerContext,
    TriggerDecision,
    TuningTrigger,
)

__all__ = [
    "BinRecord",
    "ClosedLoopSimulation",
    "ComponentRegistry",
    "Driver",
    "DriverConfig",
    "Event",
    "EventKind",
    "EventLog",
    "ForecastDriftTrigger",
    "NeverTrigger",
    "Organizer",
    "OrganizerConfig",
    "OrganizerRunReport",
    "PeriodicTrigger",
    "SlaViolationTrigger",
    "TriggerContext",
    "TriggerDecision",
    "TuningTrigger",
    "default_registry",
]
