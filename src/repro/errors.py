"""Exception hierarchy for the self-managing database framework.

Every error raised by this library derives from :class:`ReproError` so
applications can catch framework failures with a single ``except`` clause
while still distinguishing substrate problems (schema, execution) from
self-management problems (tuning, ordering).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table/column definition is invalid or referenced incorrectly."""


class CatalogError(ReproError):
    """A catalog lookup failed (unknown table, duplicate registration)."""


class ExecutionError(ReproError):
    """A query could not be executed against the database."""


class SQLSyntaxError(ReproError):
    """The SQL-subset parser rejected a statement."""


class EncodingError(ReproError):
    """A segment encoding could not be applied or decoded."""


class IndexError_(ReproError):
    """An index operation failed (name chosen to avoid shadowing builtins)."""


class KnobError(ReproError):
    """A knob was set outside its domain or does not exist."""


class PlacementError(ReproError):
    """A chunk placement request referenced an unknown tier or chunk."""


class ConstraintError(ReproError):
    """A constraint definition is invalid or cannot be evaluated."""


class ConstraintViolation(ReproError):
    """A selection or configuration violates an enforced constraint."""


class CostModelError(ReproError):
    """A cost model could not produce an estimate."""


class CalibrationError(CostModelError):
    """Cost model calibration failed (insufficient or degenerate data)."""


class ForecastError(ReproError):
    """A forecast model could not be fitted or evaluated."""


class TuningError(ReproError):
    """A tuner pipeline stage failed."""


class ActionError(TuningError):
    """A configuration action failed to apply.

    Carries the fault class the recovery machinery keys on: *transient*
    failures (lock timeouts, resource spikes) are worth retrying with
    backoff, *permanent* ones (out of memory, corrupted structure) are
    not and force a rollback of the surrounding pass.
    """

    def __init__(
        self,
        message: str,
        action: str | None = None,
        transient: bool = False,
    ) -> None:
        super().__init__(message)
        #: description of the failing action, when known
        self.action = action
        #: True for failures that may succeed on retry
        self.transient = transient


class TuningAbortedError(TuningError):
    """A tuning application failed mid-pass and was rolled back.

    Raised by the failure-aware tuning executors after they restored the
    pre-pass configuration. Carries the :class:`~repro.tuning.executors
    .base.ApplicationReport` of the aborted pass (what was applied, what
    was rolled back, retries spent) so callers can account for the wasted
    work; the tuner additionally attaches the proposed
    ``TuningResult`` and feature name on the way up.
    """

    def __init__(
        self,
        message: str,
        report: object | None = None,
        cause: ActionError | None = None,
    ) -> None:
        super().__init__(message)
        #: the executor's ApplicationReport of the aborted application
        self.report = report
        #: the ActionError that triggered the abort
        self.cause = cause
        #: feature being tuned (attached by Tuner.apply)
        self.feature: str | None = None
        #: the proposed TuningResult (attached by Tuner.apply)
        self.result: object | None = None


class SelectionError(TuningError):
    """A selector could not produce a feasible selection."""


class OrderingError(ReproError):
    """The tuning-order optimization failed (infeasible LP, bad input)."""


class PluginError(ReproError):
    """A plugin could not be attached, started, or stopped."""


class ConfigurationError(ReproError):
    """A configuration instance or delta is inconsistent."""


class PolicyError(ReproError):
    """A policy declaration (objectives, config, YAML) is invalid."""
