"""Exception hierarchy for the self-managing database framework.

Every error raised by this library derives from :class:`ReproError` so
applications can catch framework failures with a single ``except`` clause
while still distinguishing substrate problems (schema, execution) from
self-management problems (tuning, ordering).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table/column definition is invalid or referenced incorrectly."""


class CatalogError(ReproError):
    """A catalog lookup failed (unknown table, duplicate registration)."""


class ExecutionError(ReproError):
    """A query could not be executed against the database."""


class SQLSyntaxError(ReproError):
    """The SQL-subset parser rejected a statement."""


class EncodingError(ReproError):
    """A segment encoding could not be applied or decoded."""


class IndexError_(ReproError):
    """An index operation failed (name chosen to avoid shadowing builtins)."""


class KnobError(ReproError):
    """A knob was set outside its domain or does not exist."""


class PlacementError(ReproError):
    """A chunk placement request referenced an unknown tier or chunk."""


class ConstraintError(ReproError):
    """A constraint definition is invalid or cannot be evaluated."""


class ConstraintViolation(ReproError):
    """A selection or configuration violates an enforced constraint."""


class CostModelError(ReproError):
    """A cost model could not produce an estimate."""


class CalibrationError(CostModelError):
    """Cost model calibration failed (insufficient or degenerate data)."""


class ForecastError(ReproError):
    """A forecast model could not be fitted or evaluated."""


class TuningError(ReproError):
    """A tuner pipeline stage failed."""


class SelectionError(TuningError):
    """A selector could not produce a feasible selection."""


class OrderingError(ReproError):
    """The tuning-order optimization failed (infeasible LP, bad input)."""


class PluginError(ReproError):
    """A plugin could not be attached, started, or stopped."""


class ConfigurationError(ReproError):
    """A configuration instance or delta is inconsistent."""
