"""Runtime regression detection for committed tuning passes.

The paper's runtime KPIs exist "for determining the impact of adjusted
configurations" (Section II-A.e). The detector operationalises that:
given the pre-commit KPI baseline and the windowed post-commit samples,
it decides whether the committed configuration made the workload
*measurably worse* — noise-aware, so a single slow bin never condemns a
good commit:

- idle samples (no queries executed in the interval) carry no evidence
  and are excluded from both windows;
- a verdict needs at least ``min_samples`` busy post-commit samples;
- the regression must exceed a *relative* bound over the baseline
  (``observed > baseline * (1 + regression_bound)``), which scales with
  the workload instead of chasing absolute milliseconds.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.kpi.metrics import MEAN_QUERY_MS, QUERIES_EXECUTED, KPISample


class RegressionStatus(enum.Enum):
    """Outcome of one regression check against a probation commit."""

    #: not enough busy samples (or no usable baseline) for a verdict yet
    PENDING = "pending"
    #: enough evidence, and the KPI stayed within the bound
    CLEAR = "clear"
    #: enough evidence, and the KPI regressed beyond the bound
    CONFIRMED = "confirmed"


@dataclass(frozen=True)
class RegressionVerdict:
    """One windowed KPI comparison against the pre-commit baseline."""

    status: RegressionStatus
    metric: str
    baseline_ms: float
    observed_ms: float
    #: busy (non-idle) post-commit samples the observation is based on
    sample_count: int

    @property
    def regression(self) -> float:
        """Relative KPI regression over the baseline (0 when no baseline)."""
        if self.baseline_ms <= 0:
            return 0.0
        return self.observed_ms / self.baseline_ms - 1.0

    @property
    def confirmed(self) -> bool:
        return self.status is RegressionStatus.CONFIRMED


class RegressionDetector:
    """Noise-aware windowed KPI comparison against a pre-commit baseline."""

    def __init__(
        self,
        metric: str = MEAN_QUERY_MS,
        regression_bound: float = 0.30,
        min_samples: int = 3,
    ) -> None:
        if regression_bound <= 0:
            raise ValueError("regression_bound must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.metric = metric
        self.regression_bound = regression_bound
        self.min_samples = min_samples

    @staticmethod
    def busy(samples: Sequence[KPISample]) -> list[KPISample]:
        """Samples whose interval actually executed queries."""
        return [s for s in samples if s.get(QUERIES_EXECUTED) > 0]

    def baseline(self, samples: Sequence[KPISample], last_n: int) -> tuple[float, int]:
        """Mean of the metric over the last ``last_n`` busy samples.

        Returns ``(baseline, sample_count)``; ``(0.0, 0)`` when no busy
        sample exists — an unusable baseline that keeps every later
        verdict :attr:`RegressionStatus.PENDING` (no evidence, no
        rollback).
        """
        busy = self.busy(samples)[-last_n:]
        if not busy:
            return 0.0, 0
        return sum(s.get(self.metric) for s in busy) / len(busy), len(busy)

    def evaluate(
        self, baseline_ms: float, samples: Sequence[KPISample]
    ) -> RegressionVerdict:
        """Compare post-commit ``samples`` against ``baseline_ms``."""
        busy = self.busy(samples)
        if baseline_ms <= 0 or len(busy) < self.min_samples:
            return RegressionVerdict(
                status=RegressionStatus.PENDING,
                metric=self.metric,
                baseline_ms=baseline_ms,
                observed_ms=0.0,
                sample_count=len(busy),
            )
        observed = sum(s.get(self.metric) for s in busy) / len(busy)
        confirmed = observed > baseline_ms * (1.0 + self.regression_bound)
        return RegressionVerdict(
            status=(
                RegressionStatus.CONFIRMED
                if confirmed
                else RegressionStatus.CLEAR
            ),
            metric=self.metric,
            baseline_ms=baseline_ms,
            observed_ms=observed,
            sample_count=len(busy),
        )
