"""The commit guard: probation, watchdog, and escalation in one place.

PR 3 made action *application* fault-tolerant; the guard makes tuning
*decisions* fault-tolerant. Every committed pass enters a probation
window during which its inverse actions are retained
(:class:`~repro.guard.ledger.CommitLedger`); a
:class:`~repro.guard.regression.RegressionDetector` watches the
post-commit runtime KPIs against the pre-commit baseline, and a
:class:`~repro.guard.forecast_miss.ForecastMissDetector` watches the
observed template mix against the forecast the pass was tuned for. The
organizer drives the guard from its per-tick hook and performs the
actual rollback / re-tune; the guard owns the state machine, events,
and ``guard_*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.configuration.actions import Action
from repro.core.events import EventKind, EventLog
from repro.forecasting.predictor import WorkloadPredictor
from repro.forecasting.scenarios import Forecast
from repro.guard.forecast_miss import (
    ForecastMissDetector,
    ForecastMissVerdict,
)
from repro.guard.ledger import (
    CommitLedger,
    CommitResolution,
    ProbationCommit,
)
from repro.guard.regression import RegressionDetector, RegressionVerdict
from repro.kpi.metrics import (
    GUARD_COMMITS,
    GUARD_ESCALATIONS,
    GUARD_FORECAST_MISSES,
    GUARD_PASSED,
    GUARD_REGRESSIONS,
    GUARD_ROLLBACKS,
    GUARD_SUPERSEDED,
    MEAN_QUERY_MS,
)
from repro.kpi.monitor import RuntimeKPIMonitor
from repro.telemetry.metrics import MetricRegistry


@dataclass(frozen=True)
class GuardConfig:
    """Policy parameters of the guarded-commit protocol."""

    #: master switch; when off the organizer never opens probation
    enabled: bool = True
    #: KPI the regression watchdog compares (lower is better)
    metric: str = MEAN_QUERY_MS
    #: pre-commit busy samples averaged into the baseline
    baseline_samples: int = 4
    #: busy post-commit samples required before any regression verdict
    min_samples: int = 3
    #: post-commit samples after which an unconfirmed commit passes
    probation_samples: int = 8
    #: relative KPI regression over baseline that confirms a bad commit
    regression_bound: float = 0.30
    #: consecutive rolled-back commits of one feature before the guard
    #: flags it as a repeat offender (the organizer then force-opens the
    #: feature-quarantine breaker for it)
    repeat_offender_after: int = 2
    #: total-variation distance beyond which the observed mix is a miss.
    #: Calibration: a dominance swap of the retail suite's heaviest and
    #: lightest families moves ~0.25 TV, while Poisson noise on a stable
    #: mix (averaged over the observed window) stays under ~0.1
    tv_threshold: float = 0.20
    #: consecutive missing observations before escalation
    miss_patience: int = 2
    #: recent bins averaged into the observed template mix
    observed_window_bins: int = 3
    #: simulated ms between forecast-miss escalations
    escalation_cooldown_ms: float = 3 * 60_000.0


class CommitGuard:
    """Tracks probation commits and the forecast envelope.

    The guard never mutates the database itself — it reports CONFIRMED
    regressions and escalations to the organizer, which rolls back
    through the executor's recovery path and re-tunes. That keeps all
    reconfiguration accounting on the one code path PR 3 already tests.
    """

    def __init__(
        self,
        monitor: RuntimeKPIMonitor,
        config: GuardConfig | None = None,
        registry: MetricRegistry | None = None,
        events: EventLog | None = None,
        tenant: str = "",
    ) -> None:
        self._monitor = monitor
        self._config = config or GuardConfig()
        self._events = events if events is not None else EventLog()
        registry = registry if registry is not None else MetricRegistry()
        self._ledger = CommitLedger(tenant=tenant)
        self._detector = RegressionDetector(
            metric=self._config.metric,
            regression_bound=self._config.regression_bound,
            min_samples=self._config.min_samples,
        )
        self._miss_detector = ForecastMissDetector(
            threshold=self._config.tv_threshold,
            patience=self._config.miss_patience,
        )
        self._forecast: Forecast | None = None
        self._last_escalation_ms: float | None = None
        #: feature → consecutive commits of it the watchdog rolled back
        self._regression_streaks: dict[str, int] = {}
        self._commits = registry.counter(GUARD_COMMITS)
        self._passed = registry.counter(GUARD_PASSED)
        self._superseded = registry.counter(GUARD_SUPERSEDED)
        self._regressions = registry.counter(GUARD_REGRESSIONS)
        self._rollbacks = registry.counter(GUARD_ROLLBACKS)
        self._misses = registry.counter(GUARD_FORECAST_MISSES)
        self._escalations = registry.counter(GUARD_ESCALATIONS)

    @property
    def config(self) -> GuardConfig:
        return self._config

    @property
    def ledger(self) -> CommitLedger:
        return self._ledger

    @property
    def active_commit(self) -> ProbationCommit | None:
        return self._ledger.active

    @property
    def miss_streak(self) -> int:
        return self._miss_detector.streak

    def regression_streak(self, feature: str) -> int:
        """Consecutive rolled-back commits ``feature`` contributed to."""
        return self._regression_streaks.get(feature, 0)

    # ------------------------------------------------------------------
    # probation lifecycle

    def note_forecast(self, forecast: Forecast) -> None:
        """Adopt ``forecast`` as the envelope the live workload is judged
        against; resets the miss streak (the new configuration was tuned
        for this forecast, so drift evidence starts over)."""
        self._forecast = forecast
        self._miss_detector.reset()

    def open_probation(
        self,
        now_ms: float,
        *,
        features: tuple[str, ...],
        inverse_actions: tuple[Action, ...],
        saved_epoch: int,
        saved_pool: tuple[int, int],
        record_id: int | None = None,
    ) -> ProbationCommit | None:
        """Put a freshly committed pass on probation.

        Returns ``None`` (no probation) when the guard is disabled or
        the pass applied nothing reversible. The KPI baseline is taken
        *now*, from the monitor history — which at commit time still
        contains only pre-pass samples.
        """
        if not self._config.enabled or not inverse_actions:
            return None
        baseline_ms, baseline_count = self._detector.baseline(
            self._monitor.history(), self._config.baseline_samples
        )
        commit, superseded = self._ledger.open(
            now_ms,
            features=features,
            inverse_actions=inverse_actions,
            saved_epoch=saved_epoch,
            saved_pool=saved_pool,
            baseline_ms=baseline_ms,
            baseline_sample_count=baseline_count,
            record_id=record_id,
        )
        self._commits.inc()
        if superseded is not None:
            self._superseded.inc()
            self._events.log(
                now_ms,
                EventKind.GUARD,
                f"commit #{superseded.commit_id} superseded by "
                f"commit #{commit.commit_id} before its probation ended",
                commit_id=superseded.commit_id,
                state="superseded",
                superseded_by=commit.commit_id,
            )
        self._events.log(
            now_ms,
            EventKind.GUARD,
            f"commit #{commit.commit_id} on probation: "
            f"{len(inverse_actions)} inverse actions retained, "
            f"baseline {baseline_ms:.2f} ms over {baseline_count} samples",
            commit_id=commit.commit_id,
            state="on_probation",
            features=list(features),
            inverse_actions=len(inverse_actions),
            baseline_ms=baseline_ms,
            baseline_samples=baseline_count,
        )
        return commit

    # ------------------------------------------------------------------
    # watchdogs

    def _post_commit_samples(self, commit: ProbationCommit) -> list:
        return [
            s
            for s in self._monitor.history()
            if s.at_ms > commit.committed_at_ms
        ]

    def check_regression(
        self, now_ms: float
    ) -> tuple[ProbationCommit, RegressionVerdict] | None:
        """Evaluate the active probation commit against post-commit KPIs.

        Returns ``(commit, verdict)`` only on a CONFIRMED regression —
        the caller then rolls back and calls :meth:`resolve_rollback`.
        An unconfirmed commit whose probation window has elapsed
        (``probation_samples`` post-commit samples) graduates here:
        resolved PASSED, rollback material dropped.
        """
        commit = self._ledger.active
        if commit is None:
            return None
        post = self._post_commit_samples(commit)
        verdict = self._detector.evaluate(commit.baseline_ms, post)
        if verdict.confirmed:
            self._regressions.inc()
            self._events.log(
                now_ms,
                EventKind.GUARD,
                f"commit #{commit.commit_id} regression confirmed: "
                f"{verdict.metric} {commit.baseline_ms:.2f} -> "
                f"{verdict.observed_ms:.2f} ms "
                f"(+{verdict.regression:.0%} over {verdict.sample_count} "
                "samples)",
                commit_id=commit.commit_id,
                state="regression_confirmed",
                metric=verdict.metric,
                baseline_ms=commit.baseline_ms,
                observed_ms=verdict.observed_ms,
                regression=verdict.regression,
                samples=verdict.sample_count,
            )
            return commit, verdict
        if len(post) >= self._config.probation_samples:
            self._ledger.resolve(CommitResolution.PASSED, now_ms)
            self._passed.inc()
            for feature in commit.features:
                self._regression_streaks.pop(feature, None)
            self._events.log(
                now_ms,
                EventKind.GUARD,
                f"commit #{commit.commit_id} passed probation "
                f"({verdict.metric} {verdict.observed_ms:.2f} ms vs "
                f"baseline {commit.baseline_ms:.2f} ms)",
                commit_id=commit.commit_id,
                state="passed",
                observed_ms=verdict.observed_ms,
                baseline_ms=commit.baseline_ms,
            )
        return None

    def resolve_rollback(
        self, now_ms: float
    ) -> tuple[ProbationCommit, tuple[str, ...]]:
        """Mark the active commit rolled back (after the caller restored
        the pre-commit configuration through the executor).

        Returns ``(commit, repeat_offenders)``: features whose last
        ``repeat_offender_after`` commits were all rolled back. The
        organizer force-opens the quarantine breaker for those — a
        feature the cost model keeps getting wrong must stop tuning, not
        keep oscillating. A flagged feature's streak resets so it gets a
        clean slate after its quarantine probation.
        """
        commit = self._ledger.resolve(CommitResolution.ROLLED_BACK, now_ms)
        self._rollbacks.inc()
        offenders: list[str] = []
        for feature in commit.features:
            streak = self._regression_streaks.get(feature, 0) + 1
            if streak >= self._config.repeat_offender_after:
                offenders.append(feature)
                self._regression_streaks.pop(feature, None)
            else:
                self._regression_streaks[feature] = streak
        return commit, tuple(offenders)

    def check_forecast_miss(
        self, now_ms: float, predictor: WorkloadPredictor
    ) -> ForecastMissVerdict | None:
        """Compare the observed template mix against the noted forecast.

        Returns the verdict only when it escalates (``miss_patience``
        consecutive observations outside the envelope, and no escalation
        within the cooldown). No forecast noted, an all-idle observation
        window, or a forecast with no mass all yield ``None`` — absence
        of evidence never escalates.
        """
        if not self._config.enabled or self._forecast is None:
            return None
        if (
            self._last_escalation_ms is not None
            and now_ms - self._last_escalation_ms
            < self._config.escalation_cooldown_ms
        ):
            return None
        observed = predictor.recent_scenario(
            self._config.observed_window_bins,
            self._forecast.horizon_bins,
            name="observed",
        ).frequencies
        if sum(observed.values()) <= 0:
            return None
        verdict = self._miss_detector.observe(self._forecast, observed)
        if not verdict.miss:
            return None
        self._misses.inc()
        if not verdict.escalate:
            return None
        self._escalations.inc()
        self._last_escalation_ms = now_ms
        self._events.log(
            now_ms,
            EventKind.GUARD,
            f"forecast miss escalated: observed mix is {verdict.distance:.2f}"
            f" TV from nearest scenario {verdict.nearest_scenario!r} "
            f"for {self._config.miss_patience} consecutive observations",
            state="forecast_miss",
            distance=verdict.distance,
            nearest_scenario=verdict.nearest_scenario,
            threshold=self._config.tv_threshold,
        )
        return verdict

    # ------------------------------------------------------------------
    # inspection

    def snapshot(self) -> dict[str, object]:
        """Guard state view for logs and the CLI."""
        return {
            "enabled": self._config.enabled,
            "active_commit": (
                self._ledger.active.commit_id
                if self._ledger.active is not None
                else None
            ),
            "miss_streak": self._miss_detector.streak,
            "ledger": self._ledger.snapshot(),
        }
