"""Forecast-miss detection: has the live workload left the forecast
envelope?

Runtime KPIs "can disclose when the configuration should be adjusted"
(Section II-A.e) — but a configuration tuned for a forecast can also be
invalidated by the *workload itself* drifting away from every scenario
the forecast contained (the ``swap_dominance`` failure mode of
``repro.workload.drift``). The detector compares the observed template
mix against each forecast scenario using total-variation distance over
normalised family frequencies; when the *nearest* scenario is still too
far away for ``patience`` consecutive observations, it escalates — the
organizer re-tunes immediately instead of waiting for the next periodic
trigger.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.forecasting.scenarios import Forecast


def total_variation(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """Total-variation distance between two frequency vectors.

    Both vectors are normalised to probability distributions over the
    union of their template keys first, so absolute volume differences
    (more queries, same mix) do not register as drift. Returns a value
    in [0, 1]; an empty-vs-nonempty comparison is maximal drift (1.0)
    and two empty vectors are identical (0.0).
    """
    p_total = sum(max(0.0, v) for v in p.values())
    q_total = sum(max(0.0, v) for v in q.values())
    if p_total <= 0 and q_total <= 0:
        return 0.0
    if p_total <= 0 or q_total <= 0:
        return 1.0
    keys = set(p) | set(q)
    return 0.5 * sum(
        abs(
            max(0.0, p.get(key, 0.0)) / p_total
            - max(0.0, q.get(key, 0.0)) / q_total
        )
        for key in keys
    )


@dataclass(frozen=True)
class ForecastMissVerdict:
    """One observed-mix-vs-forecast comparison."""

    #: TV distance to the nearest forecast scenario
    distance: float
    #: name of the nearest scenario
    nearest_scenario: str
    #: whether this observation was outside the envelope
    miss: bool
    #: consecutive misses including this observation
    streak: int
    #: whether the streak reached patience on this observation
    escalate: bool


class ForecastMissDetector:
    """Tracks consecutive observations outside the forecast envelope."""

    def __init__(self, threshold: float = 0.35, patience: int = 2) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.threshold = threshold
        self.patience = patience
        self._streak = 0

    @property
    def streak(self) -> int:
        return self._streak

    def reset(self) -> None:
        """Forget the current miss streak (a fresh forecast was adopted)."""
        self._streak = 0

    def observe(
        self, forecast: Forecast, observed: Mapping[str, float]
    ) -> ForecastMissVerdict:
        """Record one observed template mix against ``forecast``.

        The observed mix is inside the envelope as long as *any* scenario
        is within the threshold — the forecast explicitly models several
        futures, and matching the worst case is not a miss. Escalation
        resets the streak so re-tuning gets a full patience window before
        the detector can fire again.
        """
        distances = {
            scenario.name: total_variation(scenario.frequencies, observed)
            for scenario in forecast.scenarios
        }
        nearest = min(distances, key=distances.get)
        distance = distances[nearest]
        miss = distance > self.threshold
        self._streak = self._streak + 1 if miss else 0
        escalate = self._streak >= self.patience
        if escalate:
            self._streak = 0
        return ForecastMissVerdict(
            distance=distance,
            nearest_scenario=nearest,
            miss=miss,
            streak=self._streak if not escalate else self.patience,
            escalate=escalate,
        )
