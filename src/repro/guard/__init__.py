"""Guarded reconfiguration: commit probation, regression watchdog, and
forecast-miss escalation (see docs/robustness.md)."""

from repro.guard.forecast_miss import (
    ForecastMissDetector,
    ForecastMissVerdict,
    total_variation,
)
from repro.guard.guard import CommitGuard, GuardConfig
from repro.guard.ledger import CommitLedger, CommitResolution, ProbationCommit
from repro.guard.regression import (
    RegressionDetector,
    RegressionStatus,
    RegressionVerdict,
)

__all__ = [
    "CommitGuard",
    "CommitLedger",
    "CommitResolution",
    "ForecastMissDetector",
    "ForecastMissVerdict",
    "GuardConfig",
    "ProbationCommit",
    "RegressionDetector",
    "RegressionStatus",
    "RegressionVerdict",
    "total_variation",
]
