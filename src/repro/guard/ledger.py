"""The commit ledger: retained rollback material for committed passes.

PR 3's executors already produce the inverse actions of everything they
apply — but a *successful* pass used to discard them. The ledger keeps
them instead, for the duration of a probation window: a commit that
turns out to regress runtime KPIs can then be rolled back through the
exact same recovery path a failed application uses.

At most one commit is on probation at a time. Inverse actions only
compose with the configuration state they were recorded against, so a
newer commit landing on top *supersedes* the older probation entry (its
rollback material is discarded and it graduates early, recorded as
:attr:`CommitResolution.SUPERSEDED`) rather than stacking unsoundly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.configuration.actions import Action


class CommitResolution(enum.Enum):
    """How a probation commit left the ledger."""

    #: the probation window elapsed without a confirmed regression
    PASSED = "passed"
    #: a confirmed KPI regression rolled the commit back
    ROLLED_BACK = "rolled_back"
    #: a newer commit landed before the window elapsed
    SUPERSEDED = "superseded"


@dataclass
class ProbationCommit:
    """One committed tuning pass under guard."""

    commit_id: int
    committed_at_ms: float
    #: features that contributed applied actions to the commit
    features: tuple[str, ...]
    #: inverse actions in application order (rollback applies them LIFO)
    inverse_actions: tuple[Action, ...]
    #: pre-pass config epoch for the exact-restore fast path
    saved_epoch: int
    #: pre-pass buffer-pool fingerprint proving a restore was exact
    saved_pool: tuple[int, int]
    #: pre-commit KPI baseline (mean of the guarded metric)
    baseline_ms: float
    #: busy samples the baseline was computed over
    baseline_sample_count: int
    #: configuration-store record of the commit, when one was appended
    record_id: int | None = None
    resolution: CommitResolution | None = None
    resolved_at_ms: float | None = None

    @property
    def active(self) -> bool:
        return self.resolution is None


class CommitLedger:
    """Holds the active probation commit plus the resolution history."""

    def __init__(self, history_size: int = 64, tenant: str = "") -> None:
        """``tenant`` labels the ledger in a fleet ('' for single-tenant).
        Each tenant's guard owns its own ledger — probation state and
        commit ids are strictly per tenant; the fleet arbiter counts
        concurrent reconfigurations by asking every ledger, never by
        sharing one."""
        if history_size < 1:
            raise ValueError("history_size must be at least 1")
        self._history_size = history_size
        self._tenant = tenant
        self._active: ProbationCommit | None = None
        self._resolved: list[ProbationCommit] = []
        self._next_id = 1

    @property
    def tenant(self) -> str:
        """Tenant this ledger belongs to ('' for single-tenant)."""
        return self._tenant

    @property
    def active(self) -> ProbationCommit | None:
        return self._active

    def history(self) -> tuple[ProbationCommit, ...]:
        return tuple(self._resolved)

    def __len__(self) -> int:
        return len(self._resolved) + (1 if self._active is not None else 0)

    def open(
        self,
        now_ms: float,
        *,
        features: tuple[str, ...],
        inverse_actions: tuple[Action, ...],
        saved_epoch: int,
        saved_pool: tuple[int, int],
        baseline_ms: float,
        baseline_sample_count: int,
        record_id: int | None = None,
    ) -> tuple[ProbationCommit, ProbationCommit | None]:
        """Open probation for a fresh commit.

        Returns ``(opened, superseded)`` where ``superseded`` is the
        previously active commit this one displaced (now resolved), or
        ``None``.
        """
        superseded = None
        if self._active is not None:
            superseded = self.resolve(CommitResolution.SUPERSEDED, now_ms)
        commit = ProbationCommit(
            commit_id=self._next_id,
            committed_at_ms=now_ms,
            features=features,
            inverse_actions=inverse_actions,
            saved_epoch=saved_epoch,
            saved_pool=saved_pool,
            baseline_ms=baseline_ms,
            baseline_sample_count=baseline_sample_count,
            record_id=record_id,
        )
        self._next_id += 1
        self._active = commit
        return commit, superseded

    def resolve(
        self, resolution: CommitResolution, now_ms: float
    ) -> ProbationCommit:
        """Resolve the active commit; returns it."""
        if self._active is None:
            raise ValueError("no commit is on probation")
        commit = self._active
        commit.resolution = resolution
        commit.resolved_at_ms = now_ms
        # rollback material is only meaningful while on probation
        if resolution is not CommitResolution.ROLLED_BACK:
            commit.inverse_actions = ()
        self._active = None
        self._resolved.append(commit)
        if len(self._resolved) > self._history_size:
            del self._resolved[: len(self._resolved) - self._history_size]
        return commit

    def snapshot(self) -> list[dict[str, object]]:
        """Ledger view for logs and the CLI, oldest first."""
        entries = [*self._resolved]
        if self._active is not None:
            entries.append(self._active)
        return [
            {
                "commit_id": c.commit_id,
                "committed_at_ms": c.committed_at_ms,
                "features": list(c.features),
                "inverse_actions": len(c.inverse_actions),
                "baseline_ms": c.baseline_ms,
                "resolution": (
                    c.resolution.value if c.resolution else "on_probation"
                ),
                "resolved_at_ms": c.resolved_at_ms,
            }
            for c in entries
        ]
