"""Adaptive cost estimation in production mode (paper Section V, implemented).

Shows the learned-cost-model life cycle:

1. startup calibration ("a minimal set of queries is run to create
   training data for a specialized cost model");
2. design exploration (probing calibration queries under temporarily
   built indexes, so the model can price designs it has never seen live);
3. continuous maintenance from plan-cache harvests during operation;
4. the driver's ``fast_assessment`` mode: tuning candidates priced by the
   maintained model instead of measured what-if execution.

Run:  python examples/adaptive_cost_models.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ConstraintSet,
    Driver,
    DriverConfig,
    OrganizerConfig,
    ResourceBudget,
    WhatIfOptimizer,
)
from repro.configuration import INDEX_MEMORY
from repro.core import NeverTrigger
from repro.cost import (
    LearnedCostModel,
    run_design_exploration,
    run_startup_calibration,
)
from repro.tuning import CompressionFeature, IndexSelectionFeature
from repro.util.units import MIB
from repro.workload import Predicate, Query, build_retail_suite


def median_relative_error(db, model, queries) -> float:
    errors = []
    for query in queries:
        actual = db.executor.execute(
            query, db.table(query.table), probe=True
        ).report.elapsed_ms
        errors.append(abs(model.estimate_query_ms(query) - actual) / actual)
    return float(np.median(errors))


def main() -> None:
    suite = build_retail_suite(orders_rows=40_000, inventory_rows=10_000)
    db = suite.database
    probe_queries = suite.mix.sample_queries(30, seed=9)

    # --- life cycle stages 1-2 -------------------------------------------
    model = LearnedCostModel(db)
    n = run_startup_calibration(db, model, seed=1)
    print(f"startup calibration: {n} queries executed")
    print(f"  median relative error: "
          f"{median_relative_error(db, model, probe_queries):.3f}")
    added = run_design_exploration(db, model, seed=1)
    print(f"design exploration: {added} what-if observations added")

    # the explored model prices hypothetical indexes sensibly
    query = Query("orders", (Predicate("customer", "=", 42),), aggregate="count")
    before = model.estimate_query_ms(query)
    db.create_index("orders", ["customer"])
    after = model.estimate_query_ms(query)
    print(f"  estimate without index: {before:.4f} ms; with index: {after:.4f} ms")
    db.drop_index("orders", ["customer"])

    # --- stages 3-4: the driver in fast-assessment mode ------------------
    driver = Driver(
        [IndexSelectionFeature(), CompressionFeature()],
        constraints=ConstraintSet([ResourceBudget(INDEX_MEMORY, 4 * MIB)]),
        triggers=[NeverTrigger()],
        config=DriverConfig(
            organizer=OrganizerConfig(horizon_bins=3, min_history_bins=3),
            fast_assessment=True,
        ),
    )
    db.plugin_host.attach(driver)
    for i in range(4):
        for q in suite.mix.sample_queries(30, seed=500 + i):
            db.execute(q)
        db.plugin_host.tick(db.clock.now_ms)
    print(f"\nmaintenance harvested "
          f"{driver.cost_maintenance.observations_harvested} observations "
          "from the plan cache")

    forecast = driver.predictor.forecast(horizon_bins=3)
    optimizer = WhatIfOptimizer(db)
    samples = dict(forecast.sample_queries)
    before_cost = optimizer.scenario_cost_ms(forecast.expected, samples)
    started = time.perf_counter()
    report = driver.tune_now()
    wall = time.perf_counter() - started
    after_cost = optimizer.scenario_cost_ms(forecast.expected, samples)
    print(f"fast-assessment tuning pass ({wall:.2f} s wall): "
          f"{before_cost:.3f} -> {after_cost:.3f} ms "
          f"({100 * (1 - after_cost / max(before_cost, 1e-9)):.1f}%)")
    print("applied:")
    for run in report.tuning.runs:
        for summary in run.report.action_summaries:
            print("   ", summary)


if __name__ == "__main__":
    main()
