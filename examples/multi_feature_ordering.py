"""Section III walkthrough: dependence ratios and the LP-based tuning order.

Measures W_∅, every W_A, and every W_{A,B} for three features on the retail
workload, prints the dependence matrix, solves the paper's integer LP, and
compares the outcome of recursive tuning under the LP order against naive
orders — the evaluation Section V of the paper calls for.

Run:  python examples/multi_feature_ordering.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstraintSet, RecursiveTuningPlanner, ResourceBudget, Tuner
from repro.configuration import DRAM_BYTES, INDEX_MEMORY
from repro.forecasting.scenarios import point_forecast
from repro.ordering import (
    BruteForceOrderOptimizer,
    LPOrderOptimizer,
    impact_per_cost_ranking,
    ordering_objective,
    random_order,
)
from repro.tuning import (
    CompressionFeature,
    DataPlacementFeature,
    IndexSelectionFeature,
)
from repro.util.tables import render_table
from repro.util.units import MIB
from repro.workload import build_retail_suite


def make_forecast(suite):
    rng = np.random.default_rng(5)
    samples = {}
    frequencies = {}
    for family in suite.families.values():
        query = family.sample(rng)
        samples[query.template().key] = query
        frequencies[query.template().key] = 10.0
    return point_forecast(frequencies, samples)


def fresh_setup():
    suite = build_retail_suite(orders_rows=40_000, inventory_rows=10_000)
    db = suite.database
    data_total = sum(
        chunk.memory_bytes()
        for table in db.catalog.tables()
        for chunk in table.chunks()
    )
    constraints = ConstraintSet(
        [
            ResourceBudget(INDEX_MEMORY, 2 * MIB),
            ResourceBudget(DRAM_BYTES, int(0.85 * data_total)),
        ]
    )
    tuners = [
        Tuner(IndexSelectionFeature(), db),
        Tuner(CompressionFeature(), db),
        Tuner(DataPlacementFeature(), db),
    ]
    return suite, db, tuners, constraints


def main() -> None:
    suite, db, tuners, constraints = fresh_setup()
    forecast = make_forecast(suite)
    planner = RecursiveTuningPlanner(db, tuners, constraints)

    print("measuring W_0, W_A, and W_{A,B} (sandboxed tuning runs)...")
    matrix = planner.measure_dependencies(forecast)
    print(f"\nW_0 (no optimization) = {matrix.w_empty:.3f} ms\n")

    print(
        render_table(
            ["feature", "W_A", "impact W0/W_A", "tuning cost ms"],
            [
                [f, round(matrix.w_single[f], 3), round(matrix.impact(f), 3),
                 round(matrix.tuning_cost_ms[f], 2)]
                for f in matrix.features
            ],
            title="single-feature impacts",
        )
    )
    print()
    print(
        render_table(
            ["A", "B", "W_AB", "W_BA", "d_AB", "tune first"],
            [
                [a, b, round(matrix.w_pair[(a, b)], 3),
                 round(matrix.w_pair[(b, a)], 3), round(matrix.d(a, b), 4),
                 a if matrix.d(a, b) > 1 else b]
                for a in matrix.features
                for b in matrix.features
                if a < b
            ],
            title="pairwise dependence ratios d_AB = W_BA / W_AB",
        )
    )

    lp = LPOrderOptimizer().optimize(matrix)
    oracle = BruteForceOrderOptimizer().optimize(matrix)
    print(f"\nLP model: {lp.n_variables} variables, {lp.n_constraints} "
          f"constraints (= 2|S|^2-|S| and 2|S|^2 for |S|=3)")
    print(f"LP order:       {' -> '.join(lp.order)}  "
          f"(objective {lp.objective:.3f}, solved in {lp.solve_seconds * 1e3:.1f} ms)")
    print(f"oracle order:   {' -> '.join(oracle.order)}  "
          f"(objective {oracle.objective:.3f})")

    print("\nimpact-per-cost ranking (for tuning-time budgets):")
    for rank, (feature, score) in enumerate(impact_per_cost_ranking(matrix), 1):
        print(f"  {rank}. {feature} ({score:.3f})")

    # recursive tuning under competing orders, each on a fresh database
    print("\nrecursive tuning outcome per order:")
    candidates = {
        "lp": lp.order,
        "random": random_order(matrix, seed=3),
        "reversed-lp": tuple(reversed(lp.order)),
    }
    for name, order in candidates.items():
        r_suite, r_db, r_tuners, r_constraints = fresh_setup()
        r_forecast = make_forecast(r_suite)
        r_planner = RecursiveTuningPlanner(r_db, r_tuners, r_constraints)
        report = r_planner.run(r_forecast, order=order)
        print(
            f"  {name:12s} {' -> '.join(order):55s} "
            f"{report.initial_cost_ms:7.3f} -> {report.final_cost_ms:7.3f} ms "
            f"({100 * report.improvement:5.1f}%)  "
            f"objective={ordering_objective(matrix, order):.3f}"
        )


if __name__ == "__main__":
    main()
