"""Robust tuning: scenario-aware selection vs expected-case optimization.

The workload predictor produces forecasts with multiple scenarios; the
robust selectors of Section II-D.c use the per-scenario desirabilities to
hedge. This demo tunes indexes twice under a tight memory budget — once
seeing only the expected scenario, once with the worst-case criterion —
and evaluates both configurations in the world where the shift happened.

Run:  python examples/robust_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstraintSet, ResourceBudget, Tuner, WhatIfOptimizer
from repro.configuration import INDEX_MEMORY
from repro.forecasting.scenarios import (
    EXPECTED_SCENARIO,
    WORST_CASE_SCENARIO,
    Forecast,
    WorkloadScenario,
)
from repro.tuning import (
    IndexSelectionFeature,
    OptimalSelector,
    RobustSelector,
)
from repro.util.units import KIB
from repro.workload import build_retail_suite

BUDGET = 400 * KIB


def scenario_forecast(suite):
    rng = np.random.default_rng(7)
    samples = {}
    for name, family in suite.families.items():
        query = family.sample(rng)
        samples[name] = (query.template().key, query)

    def freq(weights):
        return {samples[n][0]: w for n, w in weights.items()}

    expected = freq(
        {"point_customer": 40.0, "id_lookup": 25.0, "customer_recent": 10.0,
         "quantity_range": 3.0, "low_stock": 2.0}
    )
    shifted = freq(
        {"point_customer": 4.0, "id_lookup": 2.0, "customer_recent": 1.0,
         "quantity_range": 40.0, "low_stock": 25.0}
    )
    forecast = Forecast(
        scenarios=(
            WorkloadScenario(EXPECTED_SCENARIO, 0.7, expected),
            WorkloadScenario(WORST_CASE_SCENARIO, 0.3, shifted),
        ),
        horizon_bins=4,
        bin_duration_ms=60_000.0,
        sample_queries={key: q for key, q in samples.values()},
    )
    return forecast, WorkloadScenario("future", 1.0, shifted)


def main() -> None:
    suite = build_retail_suite(
        orders_rows=30_000, inventory_rows=8_000, chunk_size=8_192
    )
    db = suite.database
    forecast, shifted_future = scenario_forecast(suite)
    constraints = ConstraintSet([ResourceBudget(INDEX_MEMORY, BUDGET)])
    optimizer = WhatIfOptimizer(db)
    samples = dict(forecast.sample_queries)

    expected_only = Forecast(
        scenarios=(
            WorkloadScenario(EXPECTED_SCENARIO, 1.0, forecast.expected.frequencies),
        ),
        horizon_bins=4,
        bin_duration_ms=60_000.0,
        sample_queries=samples,
    )

    policies = {
        "expected-only (optimal)": (OptimalSelector(), expected_only),
        "robust worst-case": (
            RobustSelector(OptimalSelector(), "worst_case"),
            forecast,
        ),
        "robust mean-variance": (
            RobustSelector(OptimalSelector(), "mean_variance", risk_aversion=1.5),
            forecast,
        ),
        "robust value-at-risk": (
            RobustSelector(OptimalSelector(), "value_at_risk", alpha=0.25),
            forecast,
        ),
    }

    print(f"index memory budget: {BUDGET // KIB} KiB\n")
    for name, (selector, policy_forecast) in policies.items():
        tuner = Tuner(IndexSelectionFeature(), db, selector=selector)
        result = tuner.propose(policy_forecast, constraints)
        with optimizer.hypothetical(result.delta):
            expected_cost = optimizer.scenario_cost_ms(
                forecast.expected, samples
            )
            shifted_cost = optimizer.scenario_cost_ms(shifted_future, samples)
        print(f"{name}:")
        for assessment in result.chosen:
            print(f"    {assessment.candidate.describe()}")
        print(
            f"    cost if future is as expected: {expected_cost:7.3f} ms | "
            f"cost if the shift happens: {shifted_cost:7.3f} ms"
        )
        print()


if __name__ == "__main__":
    main()
