"""Extensibility: plugging user-defined components into the framework.

The paper's central engineering claim is the separation of concerns —
"components can be exchanged effortlessly". This demo implements three
custom components against the public interfaces and runs them unmodified
inside the standard pipeline:

1. a forecast model (median of the trailing window);
2. a selector (take the top-k by expected desirability, ignore budgets);
3. a database plugin that logs every reconfiguration it observes.

Run:  python examples/custom_components.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstraintSet, Database, ResourceBudget, Tuner
from repro.configuration import INDEX_MEMORY
from repro.core.component import default_registry
from repro.dbms.plugin import Plugin
from repro.forecasting import WorkloadAnalyzer, WorkloadPredictor
from repro.forecasting.models.base import ForecastModel
from repro.tuning import IndexSelectionFeature
from repro.tuning.selectors.base import Selector, default_score_fn
from repro.util.units import MIB
from repro.workload import build_retail_suite


class TrailingMedian(ForecastModel):
    """Forecasts the median of the last ``window`` observations."""

    name = "trailing-median"

    def __init__(self, window: int = 12) -> None:
        super().__init__()
        self._window = window

    def _fit(self, series: np.ndarray) -> None:
        self._median = float(np.median(series[-self._window:]))

    def _predict(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._median)


class TopKSelector(Selector):
    """Takes the k best-scoring candidates with positive score.

    Deliberately simple — it exists to show that anything implementing
    :class:`Selector` slots into the tuner.
    """

    name = "top-k"

    def __init__(self, k: int = 3) -> None:
        self._k = k

    def select(self, assessments, budgets, probabilities,
               reconfiguration_weight=0.0, score_fn=None):
        del budgets  # this toy selector ignores budgets
        score = score_fn or default_score_fn(
            probabilities, reconfiguration_weight
        )
        ranked = sorted(assessments, key=score, reverse=True)
        return [a for a in ranked[: self._k] if score(a) > 0]


class ReconfigurationLogger(Plugin):
    """Watches the database's reconfiguration counter from the outside."""

    def __init__(self) -> None:
        self._db: Database | None = None
        self._seen = 0
        self.log: list[str] = []

    @property
    def name(self) -> str:
        return "reconfiguration-logger"

    def on_attach(self, database: Database) -> None:
        self._db = database
        self._seen = database.counters.reconfigurations

    def on_tick(self, now_ms: float) -> None:
        current = self._db.counters.reconfigurations
        if current > self._seen:
            self.log.append(
                f"[{now_ms:9.1f} ms] observed {current - self._seen} "
                "reconfiguration(s)"
            )
            self._seen = current


def main() -> None:
    suite = build_retail_suite(orders_rows=30_000, inventory_rows=8_000)
    db = suite.database

    watcher = ReconfigurationLogger()
    db.plugin_host.attach(watcher)

    # custom components can also live in the registry, next to built-ins
    registry = default_registry()
    registry.register("forecast_model", "trailing-median", TrailingMedian)
    registry.register("selector", "top-k", TopKSelector)
    print("registered forecast models:", registry.names("forecast_model"))
    print("registered selectors:      ", registry.names("selector"))

    # the custom model drives a real predictor
    analyzer = WorkloadAnalyzer(
        lambda: registry.create("forecast_model", "trailing-median")
    )
    predictor = WorkloadPredictor(db, analyzer, bin_duration_ms=60_000)
    for i in range(4):
        for query in suite.mix.sample_queries(30, seed=40 + i):
            db.execute(query)
        predictor.observe()
        db.plugin_host.tick(db.clock.now_ms)
    forecast = predictor.forecast(horizon_bins=4)
    print(f"\nforecast covers {len(forecast.expected.frequencies)} templates, "
          f"{forecast.expected.total_executions:.0f} expected executions")

    # the custom selector drives a real tuner
    tuner = Tuner(
        IndexSelectionFeature(),
        db,
        selector=registry.create("selector", "top-k", k=3),
    )
    result, report = tuner.tune(
        forecast, ConstraintSet([ResourceBudget(INDEX_MEMORY, 8 * MIB)])
    )
    print(f"\ntop-k selector chose {len(result.chosen)} indexes:")
    for assessment in result.chosen:
        print("   ", assessment.candidate.describe())

    db.plugin_host.tick(db.clock.now_ms)
    print("\nwhat the logging plugin saw:")
    for line in watcher.log:
        print("   ", line)


if __name__ == "__main__":
    main()
