"""The flagship demo: a fully autonomous loop over a drifting retail workload.

A seasonal retail workload runs for 36 simulated minutes. Halfway through,
the mix shifts (point lookups quadruple, recent-order analytics collapse).
The attached driver observes via plan-cache snapshots, forecasts, decides
when tuning pays off (forecast-drift + periodic triggers), plans the
multi-feature tuning order with the Section III LP, applies changes, and
records every decision in the event log and the configuration store.

Run:  python examples/self_driving_retail.py
"""

from __future__ import annotations

from repro import (
    ClosedLoopSimulation,
    ConstraintSet,
    Driver,
    DriverConfig,
    OrganizerConfig,
    ResourceBudget,
)
from repro.configuration import INDEX_MEMORY
from repro.core import EventKind, ForecastDriftTrigger, PeriodicTrigger
from repro.tuning import (
    CompressionFeature,
    DataPlacementFeature,
    IndexSelectionFeature,
)
from repro.util.units import MIB
from repro.workload import apply_shift, build_retail_suite, generate_trace

N_BINS = 36
SHIFT_AT = 18


def main() -> None:
    suite = build_retail_suite(orders_rows=60_000, inventory_rows=15_000)
    db = suite.database

    trace = generate_trace(
        suite.families, suite.rates, N_BINS, bin_duration_ms=60_000, seed=11
    )
    trace = apply_shift(
        trace, SHIFT_AT, {"point_customer": 4.0, "recent_orders": 0.2}
    )

    driver = Driver(
        [IndexSelectionFeature(), CompressionFeature(), DataPlacementFeature()],
        constraints=ConstraintSet([ResourceBudget(INDEX_MEMORY, 4 * MIB)]),
        triggers=[
            PeriodicTrigger(every_ms=10 * 60_000),
            ForecastDriftTrigger(relative_threshold=0.25),
        ],
        config=DriverConfig(
            organizer=OrganizerConfig(
                horizon_bins=4,
                min_history_bins=4,
                cooldown_ms=5 * 60_000,
                order_refresh_every=3,
            )
        ),
    )
    db.plugin_host.attach(driver)

    print(f"replaying {N_BINS} bins (workload shift at bin {SHIFT_AT})\n")
    simulation = ClosedLoopSimulation(db, trace, seed=3)
    print("bin  queries  mean ms   tuned")
    print("---  -------  --------  -----")
    for record in simulation.run():
        marker = "  *" if record.reconfigured else ""
        print(
            f"{record.index:3d}  {record.queries_executed:7d}  "
            f"{record.mean_query_ms:8.4f}{marker}"
        )

    print("\n--- self-management log ---")
    for event in driver.events.events():
        if event.kind in (
            EventKind.ORDER_PLANNED,
            EventKind.TUNING_FINISHED,
        ):
            print(f"[{event.at_ms / 60_000:5.1f} min] {event.message}")

    print("\n--- feedback loop (configuration store) ---")
    for record in driver.store.history():
        if record.feature is not None:
            continue  # per-feature detail records
        print(
            f"trigger={record.trigger:15s} "
            f"predicted={record.predicted_benefit_ms:7.2f} ms  "
            f"measured={record.measured_benefit_ms:7.2f} ms  "
            f"reconfig={record.reconfiguration_cost_ms:6.2f} ms"
        )

    print(f"\nfinal index memory: {db.index_bytes() / MIB:.2f} MiB")
    print(f"total reconfigurations: {db.counters.reconfigurations}")


if __name__ == "__main__":
    main()
