"""Quickstart: a self-managing database in ~60 lines.

Builds a small database, runs a workload, attaches the self-driving
framework as a plugin, lets it observe and tune once, and shows the effect.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConstraintSet,
    Database,
    DataType,
    Driver,
    DriverConfig,
    OrganizerConfig,
    ResourceBudget,
    TableSchema,
)
from repro.configuration import INDEX_MEMORY
from repro.core import NeverTrigger
from repro.tuning import CompressionFeature, IndexSelectionFeature
from repro.util.units import MIB


def build_database() -> Database:
    db = Database(name="quickstart")
    schema = TableSchema.build(
        "orders",
        [
            ("id", DataType.INT),
            ("customer", DataType.INT),
            ("country", DataType.STRING),
            ("amount", DataType.FLOAT),
        ],
    )
    table = db.create_table(schema, target_chunk_size=16_384)
    rng = np.random.default_rng(7)
    n = 100_000
    table.append(
        {
            "id": np.arange(n),
            "customer": rng.integers(0, 2_000, n),
            "country": rng.choice(["de", "us", "fr", "jp"], n),
            "amount": rng.uniform(1, 500, n).round(2),
        }
    )
    return db


def run_workload(db: Database, rounds: int) -> float:
    rng = np.random.default_rng(1)
    total = 0.0
    for _ in range(rounds):
        customer = int(rng.integers(0, 2_000))
        result = db.execute(
            f"SELECT SUM(amount) FROM orders WHERE customer = {customer}"
        )
        total += result.report.elapsed_ms
        result = db.execute(
            "SELECT COUNT(*) FROM orders WHERE country = 'de' "
            f"AND amount >= {float(rng.uniform(400, 480)):.2f}"
        )
        total += result.report.elapsed_ms
    return total


def main() -> None:
    db = build_database()

    # the driver is a plugin: the database core knows nothing about it
    driver = Driver(
        [IndexSelectionFeature(), CompressionFeature()],
        constraints=ConstraintSet([ResourceBudget(INDEX_MEMORY, 4 * MIB)]),
        triggers=[NeverTrigger()],  # manual mode for this demo
        config=DriverConfig(
            organizer=OrganizerConfig(horizon_bins=2, min_history_bins=2)
        ),
    )
    db.plugin_host.attach(driver)

    # run the workload; observe it in two bins so the predictor has history
    before = run_workload(db, rounds=30)
    driver.on_tick(db.clock.now_ms)
    run_workload(db, rounds=30)
    driver.on_tick(db.clock.now_ms)

    report = driver.tune_now()
    print("tuning order:", " -> ".join(report.order))
    for run in report.tuning.runs:
        for summary in run.report.action_summaries:
            print("  applied:", summary)

    after = run_workload(db, rounds=30)
    print(f"\nworkload cost before tuning: {before:8.2f} ms (simulated)")
    print(f"workload cost after tuning:  {after:8.2f} ms (simulated)")
    print(f"improvement: {100 * (1 - after / before):.1f}%")
    print(f"index memory used: {db.index_bytes() / MIB:.2f} MiB (budget 4 MiB)")


if __name__ == "__main__":
    main()
